#include "core/executor.hpp"

#include <stdexcept>

#include "cc/controller.hpp"

namespace samoa {

namespace {

// The consumer role is a thread-local affair: the thread driving a shard
// learns on unpark whether a replacement took the role while it was
// blocked (in which case it finishes its current task and retires).
thread_local bool t_role_lost = false;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ExecutorGroup::ExecutorGroup(ExecutorOptions opts, CCStats* stats)
    : opts_(opts), stats_(stats) {
  if (opts_.shards == 0) opts_.shards = 8;
  if (opts_.queue_capacity < 2) opts_.queue_capacity = 2;
  opts_.queue_capacity = round_up_pow2(opts_.queue_capacity);
  if (opts_.batch_limit == 0) opts_.batch_limit = 1;
  shards_.reserve(opts_.shards);
  for (std::size_t i = 0; i < opts_.shards; ++i) {
    auto s = std::make_unique<Shard>();
    s->group = this;
    s->index = i;
    s->cells = std::make_unique<Cell[]>(opts_.queue_capacity);
    s->mask = opts_.queue_capacity - 1;
    for (std::size_t j = 0; j < opts_.queue_capacity; ++j) {
      s->cells[j].seq.store(j, std::memory_order_relaxed);
      s->cells[j].tag.store(0, std::memory_order_relaxed);
    }
    shards_.push_back(std::move(s));
  }
  diag::WaitRegistry::instance().register_executor(this);
}

ExecutorGroup::~ExecutorGroup() {
  shutdown();
  diag::WaitRegistry::instance().unregister_executor(this);
}

bool ExecutorGroup::try_push_ring(Shard& s, std::function<void()>& fn, std::uint64_t tag) {
  std::size_t pos = s.tail.load(std::memory_order_relaxed);
  for (;;) {
    Cell& c = s.cells[pos & s.mask];
    const std::size_t seq = c.seq.load(std::memory_order_acquire);
    const auto dif = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
    if (dif == 0) {
      if (s.tail.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
        c.tag.store(tag, std::memory_order_relaxed);
        c.fn = std::move(fn);  // slot is claimed; the seq publish orders this
        c.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
    } else if (dif < 0) {
      return false;  // ring full
    } else {
      pos = s.tail.load(std::memory_order_relaxed);
    }
  }
}

bool ExecutorGroup::pop(Shard& s, std::function<void()>& fn, std::uint64_t& tag) {
  // Ring first: while overflow is non-empty no producer enters the ring,
  // so everything in the ring predates everything in overflow.
  const std::size_t pos = s.head.load(std::memory_order_relaxed);
  Cell& c = s.cells[pos & s.mask];
  const std::size_t seq = c.seq.load(std::memory_order_acquire);
  if (static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1) == 0) {
    fn = std::move(c.fn);
    tag = c.tag.load(std::memory_order_relaxed);
    c.fn = nullptr;
    c.tag.store(0, std::memory_order_relaxed);
    c.seq.store(pos + opts_.queue_capacity, std::memory_order_release);
    s.head.store(pos + 1, std::memory_order_relaxed);
    return true;
  }
  if (s.overflow_count.load(std::memory_order_acquire) > 0) {
    std::unique_lock lk(s.mu);
    if (!s.overflow.empty()) {
      fn = std::move(s.overflow.front().first);
      tag = s.overflow.front().second;
      s.overflow.pop_front();
      s.overflow_count.store(s.overflow.size(), std::memory_order_release);
      return true;
    }
  }
  return false;
}

bool ExecutorGroup::has_work(const Shard& s) const {
  const std::size_t pos = s.head.load(std::memory_order_relaxed);
  const Cell& c = s.cells[pos & s.mask];
  if (c.seq.load(std::memory_order_acquire) == pos + 1) return true;
  return s.overflow_count.load(std::memory_order_acquire) > 0;
}

void ExecutorGroup::submit(std::size_t shard, std::function<void()> fn, std::uint64_t tag) {
  if (shutdown_.load(std::memory_order_acquire)) {
    throw std::runtime_error("ExecutorGroup::submit after shutdown");
  }
  Shard& s = *shards_[shard];
  bool in_ring = false;
  if (s.overflow_count.load(std::memory_order_acquire) == 0) in_ring = try_push_ring(s, fn, tag);
  if (!in_ring) {
    std::unique_lock lk(s.mu);
    // Re-check under the lock: the consumer may have drained overflow to
    // empty while we waited; and once overflow is non-empty, FIFO demands
    // we append there rather than slip past older overflow entries.
    if (s.overflow_count.load(std::memory_order_relaxed) == 0 && try_push_ring(s, fn, tag)) {
      in_ring = true;
    } else {
      s.overflow.emplace_back(std::move(fn), tag);
      s.overflow_count.store(s.overflow.size(), std::memory_order_release);
      if (stats_ != nullptr) stats_->exec_overflow.add();
    }
  }
  if (stats_ != nullptr) stats_->exec_enqueues.add();
  // Dekker handshake with the consumer's sleep sequence (store kIdle;
  // fence; re-check queue): after publishing the task, the fence + state
  // read guarantee either we see kIdle/kNoConsumer and wake/spawn, or the
  // consumer's re-check sees our task.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  wake(s);
}

void ExecutorGroup::wake(Shard& s) {
  if (s.state.load(std::memory_order_seq_cst) == kConsumerRunning) return;
  bool spawn = false;
  {
    std::unique_lock lk(s.mu);
    const int st = s.state.load(std::memory_order_relaxed);
    if (st == kConsumerRunning) return;
    if (st == kConsumerIdle) {
      // The consumer holds s.mu from its state store until cv.wait, so a
      // notify sent under the lock cannot fall into the re-check gap.
      s.cv.notify_one();
      return;
    }
    // Role vacant (never started, exited, or parked mid-task with the role
    // relinquished): claim it for the thread we are about to spawn.
    s.state.store(kConsumerRunning, std::memory_order_relaxed);
    spawn = true;
  }
  if (spawn) spawn_consumer(s);
}

void ExecutorGroup::spawn_consumer(Shard& s) {
  std::unique_lock lk(gmu_);
  reap_retired_locked();
  threads_.emplace_back([this, sp = &s] { consumer_loop(sp); });
}

void ExecutorGroup::reap_retired_locked() {
  for (const auto tid : retired_) {
    for (auto it = threads_.begin(); it != threads_.end(); ++it) {
      if (it->get_id() == tid) {
        it->join();
        threads_.erase(it);
        break;
      }
    }
  }
  retired_.clear();
}

std::size_t ExecutorGroup::run_batch(Shard& s) {
  if (stats_ != nullptr) {
    const auto t = s.tail.load(std::memory_order_relaxed);
    const auto h = s.head.load(std::memory_order_relaxed);
    const std::size_t depth =
        (t > h ? t - h : 0) + s.overflow_count.load(std::memory_order_relaxed);
    if (depth > 0) stats_->exec_queue_depth.record_ns(depth);
  }
  std::size_t n = 0;
  std::function<void()> fn;
  std::uint64_t tag = 0;
  while (n < opts_.batch_limit) {
    if (!pop(s, fn, tag)) break;
    s.running_tag.store(tag, std::memory_order_relaxed);
    fn();  // exceptions are the task's responsibility, as in the pool
    fn = nullptr;
    s.running_tag.store(0, std::memory_order_relaxed);
    ++n;
    if (stats_ != nullptr) stats_->exec_dispatched.add();
    // The task's instrumented wait handed the role to a replacement; the
    // rest of the queue is theirs.
    if (t_role_lost) break;
  }
  if (n > 0 && stats_ != nullptr) {
    stats_->exec_batches.add();
    stats_->exec_batch_size.record_ns(n);
  }
  return n;
}

void ExecutorGroup::consumer_loop(Shard* s) {
  t_role_lost = false;
  diag::set_current_park_target(s);
  for (;;) {
    const std::size_t ran = run_batch(*s);
    if (t_role_lost) break;
    if (ran == opts_.batch_limit) continue;  // bounded batch; queue may have more
    // Queue observed empty: try to go idle. The state store + fence pair
    // with submit()'s publish + fence (Dekker): either a concurrent
    // producer sees kConsumerIdle and notifies under the mutex we hold
    // through cv.wait, or our re-check sees its task.
    std::unique_lock lk(s->mu);
    s->state.store(kConsumerIdle, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (has_work(*s)) {
      s->state.store(kConsumerRunning, std::memory_order_relaxed);
      continue;
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      s->state.store(kNoConsumer, std::memory_order_relaxed);
      break;
    }
    {
      // Typed idle record so watchdog dumps name parked shards without
      // treating them as stalls (WaitKind::kExecutorIdle is exempt from
      // the stuck-wait and blocked-quiescence checks). Registered
      // directly — not via ScopedWait — because an idle park must not
      // trigger our own WorkerParkTarget handoff.
      diag::WaitRecord rec;
      rec.kind = diag::WaitKind::kExecutorIdle;
      rec.subject = s;
      rec.subject_name = "executor-shard-" + std::to_string(s->index);
      rec.thread = std::this_thread::get_id();
      rec.since = std::chrono::steady_clock::now();
      auto& reg = diag::WaitRegistry::instance();
      const std::uint64_t wid = reg.add_wait(std::move(rec));
      s->cv.wait(lk, [&] {
        return has_work(*s) || shutdown_.load(std::memory_order_relaxed);
      });
      reg.remove_wait(wid);
    }
    // Ownership re-check: if another thread holds the role (it went
    // kConsumerRunning while we slept), this waiter is surplus — retiring
    // is the only safe move; draining alongside the owner would put two
    // consumers on one SPSC ring.
    if (s->state.load(std::memory_order_relaxed) == kConsumerRunning) break;
    if (stats_ != nullptr) stats_->exec_wakeups.add();
    s->state.store(kConsumerRunning, std::memory_order_relaxed);
    if (!has_work(*s) && shutdown_.load(std::memory_order_acquire)) {
      s->state.store(kNoConsumer, std::memory_order_relaxed);
      break;
    }
  }
  diag::set_current_park_target(nullptr);
  t_role_lost = false;
  std::unique_lock lk(gmu_);
  retired_.push_back(std::this_thread::get_id());
}

void ExecutorGroup::Shard::note_worker_parked() {
  // A consumer that already lost the role is a zombie: its task is still
  // finishing on this thread, but the shard belongs to a replacement (or
  // an idle waiter). Its later parks/unparks must not touch shard state —
  // stomping kNoConsumer over the owner's kIdle/kConsumerRunning is how
  // two concurrent consumers (and a corrupted SPSC ring) happen.
  if (t_role_lost) return;
  // This consumer is about to block inside a task. Hand the role back so
  // the queue behind it stays live: mark the role vacant, and if work is
  // already pending, spawn the replacement now (otherwise the next
  // producer's wake() will).
  {
    std::unique_lock lk(mu);
    state.store(kNoConsumer, std::memory_order_seq_cst);
  }
  if (group->stats_ != nullptr) group->stats_->exec_handoffs.add();
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (group->has_work(*this) && !group->shutdown_.load(std::memory_order_acquire)) {
    group->wake(*this);
  }
}

void ExecutorGroup::Shard::note_worker_unparked() {
  if (t_role_lost) return;  // zombie: see note_worker_parked
  std::unique_lock lk(mu);
  if (state.load(std::memory_order_relaxed) == kNoConsumer) {
    // Nobody took the role while we were parked: reclaim it and keep
    // draining after the current task returns.
    state.store(kConsumerRunning, std::memory_order_relaxed);
  } else {
    // A replacement (or a fresh wake) owns the shard now; finish the
    // current task and retire this thread.
    t_role_lost = true;
  }
}

void ExecutorGroup::shutdown() {
  shutdown_.store(true, std::memory_order_seq_cst);
  for (auto& s : shards_) {
    std::unique_lock lk(s->mu);
    s->cv.notify_all();
  }
  // Consumers drain their backlogs before exiting; parked tasks resuming
  // may still spawn replacements while we join, so loop until the thread
  // list stays empty.
  for (;;) {
    std::vector<std::thread> take;
    {
      std::unique_lock lk(gmu_);
      take.swap(threads_);
      retired_.clear();
    }
    if (take.empty()) break;
    for (auto& t : take) t.join();
  }
  // A shard whose consumer exited before noticing late overflow work (the
  // submit/shutdown race window) still owes execution: run any leftovers
  // inline, preserving order. Normally both loops find nothing.
  for (auto& s : shards_) {
    std::function<void()> fn;
    std::uint64_t tag = 0;
    while (pop(*s, fn, tag)) {
      fn();
      if (stats_ != nullptr) stats_->exec_dispatched.add();
    }
  }
}

std::size_t ExecutorGroup::queue_depth() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    const auto t = s->tail.load(std::memory_order_relaxed);
    const auto h = s->head.load(std::memory_order_relaxed);
    total += (t > h ? t - h : 0) + s->overflow_count.load(std::memory_order_relaxed);
  }
  return total;
}

diag::ExecutorGroupState ExecutorGroup::diag_state() const {
  diag::ExecutorGroupState g;
  g.group = this;
  if (stats_ != nullptr) {
    g.dispatched = stats_->exec_dispatched.value();
    g.handoffs = stats_->exec_handoffs.value();
  }
  g.shards.reserve(shards_.size());
  for (const auto& sp : shards_) {
    const Shard& s = *sp;
    diag::ExecutorShardState ss;
    ss.index = s.index;
    ss.consumer = s.state.load(std::memory_order_relaxed);
    const auto t = s.tail.load(std::memory_order_relaxed);
    const auto h = s.head.load(std::memory_order_relaxed);
    ss.queued = (t > h ? t - h : 0);
    ss.running_comp = s.running_tag.load(std::memory_order_relaxed);
    // Best-effort ring tags: only cells whose seq marks them published.
    constexpr std::size_t kMaxTags = 32;
    for (std::size_t pos = h; pos < t && ss.queued_comps.size() < kMaxTags; ++pos) {
      const Cell& c = s.cells[pos & s.mask];
      if (c.seq.load(std::memory_order_acquire) == pos + 1) {
        ss.queued_comps.push_back(c.tag.load(std::memory_order_relaxed));
      }
    }
    {
      std::unique_lock lk(s.mu);
      ss.queued += s.overflow.size();
      for (const auto& [fn, tag] : s.overflow) {
        if (ss.queued_comps.size() >= kMaxTags) break;
        ss.queued_comps.push_back(tag);
      }
    }
    g.shards.push_back(std::move(ss));
  }
  return g;
}

}  // namespace samoa
