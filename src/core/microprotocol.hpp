// Microprotocols and handlers.
//
// A microprotocol groups related event handlers around a shared local
// state (paper Section 2). Execution of a handler may directly modify only
// the local state of its own microprotocol; the protocol's state is the
// disjoint union of microprotocol states. The concurrency-control
// algorithms protect exactly this unit: version numbers guard access to a
// microprotocol's object, which is only touched through handler calls.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/event.hpp"
#include "util/ids.hpp"

namespace samoa {

class Context;
class Microprotocol;

/// Body of an event handler.
using HandlerFn = std::function<void(Context&, const Message&)>;

/// Handler types, following the paper's future-work direction (Section 7:
/// "introduce different types of handlers (e.g. read-only,
/// read-and-write)"). A read-only handler promises not to modify its
/// microprotocol's state; the VCArw controller lets read-only accesses of
/// different computations share a microprotocol concurrently.
enum class HandlerMode {
  kReadWrite,  // default: may mutate the microprotocol's state
  kReadOnly,   // promises not to mutate it
};

/// A named handler owned by a microprotocol. Handler identity (HandlerId)
/// is process-unique so routing graphs can be expressed over handlers from
/// different microprotocols.
class Handler {
 public:
  Handler(Microprotocol& owner, HandlerId id, std::string name, HandlerFn fn,
          HandlerMode mode = HandlerMode::kReadWrite)
      : owner_(&owner), id_(id), name_(std::move(name)), fn_(std::move(fn)), mode_(mode) {}

  Handler(const Handler&) = delete;
  Handler& operator=(const Handler&) = delete;

  HandlerId id() const { return id_; }
  const std::string& name() const { return name_; }
  Microprotocol& owner() const { return *owner_; }
  HandlerMode mode() const { return mode_; }
  bool read_only() const { return mode_ == HandlerMode::kReadOnly; }

  void invoke(Context& ctx, const Message& msg) const { fn_(ctx, msg); }

 private:
  Microprotocol* owner_;
  HandlerId id_;
  std::string name_;
  HandlerFn fn_;
  HandlerMode mode_;
};

/// Base class for microprotocols. Subclasses register their handlers in
/// their constructor via `register_handler` and keep their local state as
/// ordinary data members — no locks needed: the runtime's concurrency
/// control guarantees that handler executions of different computations on
/// the same microprotocol never interleave (the isolation property).
class Microprotocol {
 public:
  explicit Microprotocol(std::string name);
  virtual ~Microprotocol() = default;

  Microprotocol(const Microprotocol&) = delete;
  Microprotocol& operator=(const Microprotocol&) = delete;

  MicroprotocolId id() const { return id_; }
  const std::string& name() const { return name_; }

  const std::vector<std::unique_ptr<Handler>>& handlers() const { return handlers_; }

  /// Find a handler by name; returns nullptr if absent.
  const Handler* find_handler(const std::string& name) const;

 protected:
  /// Register a handler. Typically called from a subclass constructor;
  /// binding of event types to the returned handler happens separately on
  /// the Stack.
  Handler& register_handler(std::string name, HandlerFn fn,
                            HandlerMode mode = HandlerMode::kReadWrite);

 private:
  MicroprotocolId id_;
  std::string name_;
  std::vector<std::unique_ptr<Handler>> handlers_;
};

}  // namespace samoa
