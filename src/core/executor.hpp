// Per-microprotocol executors — the dispatch substrate behind
// RuntimeOptions::dispatch_impl == DispatchImpl::kExecutor.
//
// Babel-style event loops: microprotocols are hashed onto a small set of
// shards, and each shard owns a *single-consumer* event loop fed by a
// bounded lock-free MPSC ring. Producers (spawners, async triggers) pay
// one CAS + one conditional wakeup to enqueue; the consumer drains in
// run-to-completion batches, so a burst of tasks targeting one
// microprotocol executes back-to-back on one thread with no cross-thread
// handoff between them — the elastic pool's per-task submit/steal cycle
// disappears from the hot path. Trigger fan-out batches further:
// Context::async_trigger_all enqueues one node per *target shard*, not one
// per handler (see Context::dispatch_batched).
//
// Single-consumer loops and SAMOA's blocking gates would deadlock naively:
// a task parked in a version gate (Rule 2) would wedge every task queued
// behind it on the same shard. The executor reuses the diag layer's
// park instrumentation to stay live: every blocking point in the runtime
// registers a diag::ScopedWait, and a shard's consumer implements
// diag::WorkerParkTarget — on park it relinquishes the consumer role (a
// replacement thread is spawned if work is pending), on unpark it either
// reclaims the role or, if a replacement took over, finishes its task and
// retires. This preserves the elastic pool's deadlock-freedom argument: a
// runnable task never waits on a parked thread. Uninstrumented blocking in
// handler bodies (a raw condition_variable wait) is the one thing that can
// wedge a shard; util::OneShotEvent / util::WaitGroup register their parks
// precisely so test and application handlers stay covered.
//
// Placement: handler dispatches hash the owning microprotocol's id, so a
// microprotocol's async work serializes on its shard. Root tasks place
// round-robin instead — independent computations must be able to overlap
// (VCArw reader groups, TSO wait-die) and the controller's version gates
// already order the conflicting ones; a gate park hands the consumer role
// off, so cross-shard ordering costs a handoff, not liveness.
//
// FIFO: per shard, tasks run in enqueue order. When the ring is full,
// producers fall back to a mutex-guarded overflow
// deque; once overflow is non-empty every producer appends there (ring
// entries all predate overflow entries), and the consumer drains
// ring-then-overflow, so the fallback preserves per-producer FIFO instead
// of letting late ring pushes overtake earlier overflow entries.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "diag/wait_registry.hpp"

namespace samoa {

struct CCStats;

/// Tunables of the executor dispatch layer (RuntimeOptions::executor).
struct ExecutorOptions {
  /// Number of single-consumer shards microprotocols are hashed onto.
  /// 0 = auto: 8 — NOT scaled down to hardware_concurrency, because shard
  /// count caps how many computations can overlap at all (reader groups,
  /// wait-die schedules), and on small hosts the OS timeslices consumers
  /// just like it did pool workers.
  std::size_t shards = 0;
  /// Lock-free ring slots per shard (rounded up to a power of two);
  /// producers beyond this fall back to the mutex-guarded overflow deque.
  std::size_t queue_capacity = 1024;
  /// Max tasks a consumer runs per run-to-completion drain batch before
  /// re-checking shutdown and recording batch stats.
  std::size_t batch_limit = 64;
};

class ExecutorGroup final : public diag::ExecutorSource {
 public:
  /// Consumer-role states, also reported via diag::ExecutorShardState.
  enum ConsumerState : int { kNoConsumer = 0, kConsumerIdle = 1, kConsumerRunning = 2 };

  /// `stats` (may be null) receives the exec_* counters; it must outlive
  /// the group. Consumer threads are spawned lazily on first submit.
  explicit ExecutorGroup(ExecutorOptions opts, CCStats* stats = nullptr);
  ~ExecutorGroup() override;

  ExecutorGroup(const ExecutorGroup&) = delete;
  ExecutorGroup& operator=(const ExecutorGroup&) = delete;

  std::size_t shard_count() const { return shards_.size(); }

  /// Shard owning routing key `key` (a MicroprotocolId value, or a
  /// computation id for member-less specs).
  std::size_t shard_of(std::uint64_t key) const {
    // Fibonacci multiplicative hash: microprotocol ids are small and
    // sequential, a plain modulo would pile adjacent stacks' mps onto the
    // same low shards.
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> 33) % shards_.size();
  }

  /// Round-robin placement for root tasks (see class comment): spreads
  /// independent computations across shards so they can overlap.
  std::size_t next_shard() { return rr_.fetch_add(1, std::memory_order_relaxed) % shards_.size(); }

  /// Enqueue `fn` on `shard`. `tag` is the computation id (diagnostics).
  /// Lock-free while the ring has space; wakes or spawns the consumer.
  /// Throws std::runtime_error after shutdown().
  void submit(std::size_t shard, std::function<void()> fn, std::uint64_t tag);

  /// Stop accepting tasks, run every queued task to completion, join all
  /// consumer threads. Idempotent; also called by the destructor.
  void shutdown();

  /// Total tasks currently queued across shards (approximate).
  std::size_t queue_depth() const;

  // diag::ExecutorSource
  diag::ExecutorGroupState diag_state() const override;

 private:
  struct Cell {
    std::atomic<std::size_t> seq;
    std::atomic<std::uint64_t> tag;
    std::function<void()> fn;
  };

  struct Shard final : diag::WorkerParkTarget {
    ExecutorGroup* group = nullptr;
    std::size_t index = 0;

    // Bounded MPSC ring (Vyukov MPMC cells, one consumer). `head` is only
    // written under the consumer role; it is atomic because the role moves
    // between threads on park/handoff (the mutex + thread spawn provide
    // the happens-before, relaxed accesses keep it race-free).
    std::unique_ptr<Cell[]> cells;
    std::size_t mask = 0;
    alignas(64) std::atomic<std::size_t> tail{0};
    alignas(64) std::atomic<std::size_t> head{0};

    /// Non-zero while the overflow deque is non-empty: the FIFO latch that
    /// keeps producers out of the ring until the consumer drains overflow.
    alignas(64) std::atomic<std::size_t> overflow_count{0};
    std::atomic<int> state{kNoConsumer};
    std::atomic<std::uint64_t> running_tag{0};

    /// Guards overflow + consumer state transitions + cv. Leaf lock: never
    /// calls into gates or the registry while held (except cv waits).
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<std::pair<std::function<void()>, std::uint64_t>> overflow;

    // diag::WorkerParkTarget — the consumer blocked / resumed inside a
    // task's instrumented wait (see class comment: role handoff).
    void note_worker_parked() override;
    void note_worker_unparked() override;
  };

  bool try_push_ring(Shard& s, std::function<void()>& fn, std::uint64_t tag);
  bool pop(Shard& s, std::function<void()>& fn, std::uint64_t& tag);
  bool has_work(const Shard& s) const;
  /// Ensure `s` has a consumer: notify an idle one or spawn a new thread
  /// if the role is vacant. Called after every enqueue and on role parks.
  void wake(Shard& s);
  void spawn_consumer(Shard& s);
  void consumer_loop(Shard* s);
  std::size_t run_batch(Shard& s);
  void reap_retired_locked();

  ExecutorOptions opts_;
  CCStats* stats_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::size_t> rr_{0};

  mutable std::mutex gmu_;  // guards threads_/retired_
  std::vector<std::thread> threads_;
  std::vector<std::thread::id> retired_;
};

}  // namespace samoa
