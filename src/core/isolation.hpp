// Isolation declarations — the programmer-facing half of the paper's
// `isolated` construct family (Section 4):
//
//   isolated M e         -> Isolation::basic({&p, &q, ...})
//   isolated bound M e   -> Isolation::bound({{&p, 2}, {&q, 1}, ...})
//   isolated route M e   -> Isolation::route(RouteSpec{...})
//
// The declaration names every microprotocol (or handler route) the spawned
// computation may touch; the runtime's concurrency controller uses it to
// admit the computation (Step 1 of the VCA algorithms) and to police calls
// (throwing IsolationError on undeclared access).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/microprotocol.hpp"
#include "util/ids.hpp"

namespace samoa {

/// Routing pattern for `isolated route M e`: a directed graph over
/// handlers. An edge h1 -> h2 declares that the body of h1 may call h2;
/// `entries` are the handlers the root expression e may call directly.
struct RouteSpec {
  std::vector<HandlerId> entries;
  std::vector<std::pair<HandlerId, HandlerId>> edges;

  RouteSpec& entry(const Handler& h) {
    entries.push_back(h.id());
    return *this;
  }
  RouteSpec& edge(const Handler& from, const Handler& to) {
    edges.emplace_back(from.id(), to.id());
    return *this;
  }
};

/// Declared access mode per microprotocol, for Isolation::read_write (the
/// paper's future-work isolation levels: read-only accesses of different
/// computations may share a microprotocol).
enum class Access {
  kRead,   // the computation will only call read-only handlers of p
  kWrite,  // unrestricted (exclusive) access
};

class Isolation {
 public:
  enum class Kind { Basic, Bound, Route, ReadWrite };

  static Isolation basic(std::vector<const Microprotocol*> mps);
  static Isolation bound(std::vector<std::pair<const Microprotocol*, std::uint32_t>> bounds);
  static Isolation route(RouteSpec spec);
  static Isolation read_write(std::vector<std::pair<const Microprotocol*, Access>> accesses);

  Kind kind() const { return kind_; }

  /// Microprotocols the computation may visit. For Route specs this is
  /// derived lazily by the runtime (handler ids must be resolved against a
  /// stack), so it is empty until resolve_route() was called.
  const std::vector<MicroprotocolId>& members() const { return members_; }

  /// Least upper bounds; only meaningful for Kind::Bound.
  const std::unordered_map<MicroprotocolId, std::uint32_t>& bounds() const { return bounds_; }

  /// Declared access modes; only meaningful for Kind::ReadWrite.
  const std::unordered_map<MicroprotocolId, Access>& accesses() const { return accesses_; }

  /// Only meaningful for Kind::Route.
  const RouteSpec& route_spec() const { return route_; }

  /// Owning microprotocol of each handler appearing in the route spec;
  /// filled by resolve_route().
  const std::unordered_map<HandlerId, MicroprotocolId>& route_owners() const {
    return route_owners_;
  }

  bool declares(MicroprotocolId mp) const;

  /// Resolve route handler ids to their owning microprotocols (fills
  /// members()). Called by the runtime at spawn; requires every handler in
  /// the spec to exist in `stack`. Throws ConfigError otherwise.
  void resolve_route(const class Stack& stack);

  /// Human-readable description of the declaration kind, for diagnostics.
  std::string describe() const;

 private:
  explicit Isolation(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::vector<MicroprotocolId> members_;
  std::unordered_map<MicroprotocolId, std::uint32_t> bounds_;
  std::unordered_map<MicroprotocolId, Access> accesses_;
  RouteSpec route_;
  std::unordered_map<HandlerId, MicroprotocolId> route_owners_;
};

}  // namespace samoa
