// Protocol stack: a composition of microprotocols plus the binding table
// from event types to handlers.
//
// Bindings are established at protocol start-up and sealed before any
// computation is spawned, matching the paper's restriction: "all handlers
// declared in M must be bound before `isolated` commences and cannot be
// (re)bound inside any computation" (Section 4).
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/event.hpp"
#include "core/microprotocol.hpp"

namespace samoa {

class Stack {
 public:
  Stack() = default;

  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;

  /// Construct a microprotocol owned by this stack.
  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    static_assert(std::is_base_of_v<Microprotocol, T>);
    auto mp = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *mp;
    adopt(std::move(mp));
    return ref;
  }

  /// Take ownership of an externally-constructed microprotocol.
  Microprotocol& adopt(std::unique_ptr<Microprotocol> mp);

  /// Bind an event type to a handler; handlers fire in binding order for
  /// trigger_all. Throws ConfigError after seal() or for foreign handlers.
  void bind(const EventType& type, const Handler& handler);

  /// Freeze the binding table. Idempotent. Runtime seals the stack on
  /// first spawn.
  void seal();
  bool sealed() const { return sealed_.load(std::memory_order_acquire); }

  /// Handlers bound to a type, in binding order (empty if none).
  const std::vector<const Handler*>& bound_handlers(EventTypeId type) const;

  const std::vector<std::unique_ptr<Microprotocol>>& microprotocols() const {
    return microprotocols_;
  }

  const Microprotocol* find(MicroprotocolId id) const;
  const Handler* find_handler(HandlerId id) const;

 private:
  bool owns(const Microprotocol& mp) const;

  std::vector<std::unique_ptr<Microprotocol>> microprotocols_;
  std::unordered_map<EventTypeId, std::vector<const Handler*>> bindings_;
  // Written once during single-threaded composition, read by every spawn —
  // atomic so concurrent spawners from delivery/timer threads are race-free.
  std::atomic<bool> sealed_{false};
};

}  // namespace samoa
