// StepHook — the runtime's runnable-step seam for schedule exploration.
//
// The schedule-exploration subsystem (src/explore/) needs to know, at every
// point where the runtime could hand the CPU to a different computation,
// *which* steps are runnable and to pick the one that goes next. Rather
// than have core/ depend on explore/, the runtime exposes this minimal
// hook interface; explore::ScheduleController implements it as a
// cooperative token scheduler (exactly one hooked task runs between
// scheduling points; every choice is recorded for bit-exact replay).
//
// Call protocol, maintained by Runtime / Context / Computation:
//
//   on_task_submitted(c)   a task of computation c is about to be queued
//                          on the pool. Called on the submitting thread —
//                          either a thread that currently holds the token
//                          or the driver while the scheduler is paused —
//                          so the set of expected arrivals is always
//                          updated race-free with respect to decisions.
//                          Returns a ticket naming the task; submission
//                          order is deterministic, so the ticket is the
//                          task's schedule-stable identity (pool threads
//                          may *start* tasks in any OS order).
//   on_task_started(c, t)  first statement of the task body, on the pool
//                          thread, passing the ticket minted at
//                          submission. Blocks until the scheduler grants
//                          the task its first turn.
//   step_point(c, what)    a voluntary scheduling point: releases the
//                          token, lets the scheduler pick any runnable
//                          task (possibly this one again), blocks until
//                          re-granted.
//   resync(c)              called with no locks held immediately after a
//                          runtime call that may have blocked on a
//                          controller wait (version gate, serial turn,
//                          TSO claim). If the wait parked — releasing the
//                          token via the diag::WaitRegistry observer —
//                          this blocks until the token is re-granted;
//                          otherwise it is a no-op.
//   on_task_finished(c)    last statement of the task body; releases the
//                          token for good.
//
// A null hook (the default) costs one pointer test per call site.
//
// Dispatch interaction: a non-null hook forces DispatchImpl::kElasticPool
// (see RuntimeOptions::dispatch_impl). The controller's token barrier
// treats every submitted task as independently startable; a
// single-consumer executor shard serializes queued tasks, so a task
// "arrives" at the barrier only after its shard predecessor finishes —
// a structural deadlock. Since executor schedules are a strict subset of
// the per-task interleavings the explorer enumerates over the pool,
// exploring on the pool path loses no coverage.
#pragma once

#include <cstdint>

#include "util/ids.hpp"

namespace samoa {

class StepHook {
 public:
  virtual ~StepHook() = default;

  virtual std::uint64_t on_task_submitted(ComputationId id) = 0;
  virtual void on_task_started(ComputationId id, std::uint64_t ticket) = 0;
  virtual void on_task_finished(ComputationId id) = 0;
  virtual void step_point(ComputationId id, const char* what) = 0;
  virtual void resync(ComputationId id) = 0;
};

}  // namespace samoa
