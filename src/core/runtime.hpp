// Runtime — spawning of isolated computations.
//
// One Runtime drives one protocol stack with one concurrency-control
// policy. `spawn_isolated(spec, root)` is the C++ rendering of the paper's
// `isolated M e`: it admits a new computation under the controller
// (Step 1), runs `root` on a pool thread, and guarantees that the
// concurrent execution of all spawned computations satisfies the isolation
// property (for the VCA policies; kSerial trivially so, kUnsync not at
// all — it exists as the Cactus-like baseline).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "cc/controller.hpp"
#include "core/computation.hpp"
#include "core/context.hpp"
#include "core/executor.hpp"
#include "core/stack.hpp"
#include "core/step_hook.hpp"
#include "core/trace.hpp"
#include "time/clock.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace samoa {

/// Which dispatch substrate runs computation tasks — the same seam pattern
/// as GcOptions::detector_impl: both implementations drive identical
/// controller/trace semantics and every test can run against either.
enum class DispatchImpl {
  /// Resolve from the SAMOA_DISPATCH env var ("pool" or "executor");
  /// defaults to kExecutor. This is how CI runs tier-1 against both.
  kAuto,
  /// Shared elastic pool: one cross-thread handoff per task (pre-PR-8
  /// behaviour, and the fallback under schedule exploration).
  kElasticPool,
  /// Per-microprotocol sharded single-consumer event loops with batched
  /// drains (core/executor.hpp).
  kExecutor,
};

struct RuntimeOptions {
  CCPolicy policy = CCPolicy::kVCABasic;
  /// Record (event, handler) runs for the isolation checker / diagnostics.
  bool record_trace = false;
  std::size_t min_threads = 2;
  std::size_t max_threads = 1024;
  /// Time base. Null means the process wall clock. Under a
  /// time::VirtualClock the runtime holds one activity pin per in-flight
  /// computation, so virtual time stands still while computations run.
  time::ClockSource* clock = nullptr;
  /// Schedule-exploration seam (see core/step_hook.hpp). Null — the
  /// default — costs one pointer test per scheduling point; non-null
  /// serializes all computation tasks behind the hook's token scheduler.
  StepHook* step_hook = nullptr;
  /// Dispatch substrate. Note: a non-null step_hook always forces the
  /// elastic pool — the explorer's token barrier requires every submitted
  /// task to be independently schedulable, which a single-consumer shard
  /// cannot provide (a queued task would "arrive" only after its
  /// predecessor finishes, deadlocking the barrier). Executor schedules
  /// are a subset of the explored per-task interleavings, so exploration
  /// over the pool path covers them; see DESIGN.md "Dispatch".
  DispatchImpl dispatch_impl = DispatchImpl::kAuto;
  /// Executor shard/queue tunables (used when the executor is active).
  ExecutorOptions executor{};
};

class Runtime {
 public:
  explicit Runtime(Stack& stack, RuntimeOptions opts = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Spawn a computation under the isolation declaration `spec`; `root` is
  /// the expression e of `isolated M e`. Seals the stack on first use.
  ComputationHandle spawn_isolated(Isolation spec, std::function<void(Context&)> root);

  /// One element of a batched spawn: the same (spec, root) pair
  /// spawn_isolated takes.
  struct SpawnRequest {
    Isolation spec;
    std::function<void(Context&)> root;
  };

  /// Spawn a burst of computations as one admission transaction: the
  /// controller admits the whole batch (one version-range claim per gate
  /// for compatible single-mp bursts — see admit_batch), and the pool
  /// enqueues every root task under a single lock acquisition. Semantics
  /// are identical to calling spawn_isolated for each request in order;
  /// handle i corresponds to request i.
  std::vector<ComputationHandle> spawn_isolated_batch(std::vector<SpawnRequest> reqs);

  /// Block until every computation spawned so far completed.
  void drain();

  Stack& stack() { return stack_; }
  ElasticThreadPool& pool() { return pool_; }
  ConcurrencyController& controller() { return *controller_; }
  CCPolicy policy() const { return opts_.policy; }

  /// The dispatch implementation actually in effect (kAuto and the
  /// step-hook fallback resolved; never kAuto).
  DispatchImpl dispatch_impl() const { return dispatch_; }
  /// Null when dispatching through the elastic pool.
  ExecutorGroup* executor_group() { return executors_.get(); }

  /// Null when tracing is off.
  TraceRecorder* trace() { return trace_ ? trace_.get() : nullptr; }

  /// Null unless a schedule explorer drives this runtime.
  StepHook* step_hook() { return opts_.step_hook; }

  struct Stats {
    Counter spawned;
    Counter completed;
    Counter handler_calls;
  };
  const Stats& stats() const { return stats_; }

  // -- internal (called by Computation / Context) --
  void record_computation_done(ComputationId id);
  void on_computation_done(ComputationId id);
  void count_handler_call() { stats_.handler_calls.add(); }

 private:
  /// Erase `id` from inflight_, waking drain(). Returns whether this call
  /// removed it — the winner owns the computation's virtual-time unpin.
  bool remove_inflight(ComputationId id);

  /// Build the pool task that runs `root` as `comp`'s root expression
  /// (including the TSO restart loop); shared by single and batched spawn.
  std::function<void()> root_task(std::shared_ptr<Computation> comp,
                                  std::function<void(Context&)> root, std::uint64_t ticket);

  /// Route a root task to its dispatch substrate: round-robin across
  /// executor shards (independent computations must be able to overlap;
  /// the version gates order the conflicting ones — see the
  /// core/executor.hpp placement comment), or the elastic pool.
  void submit_root(std::uint64_t comp_id, std::function<void()> fn);

  Stack& stack_;
  RuntimeOptions opts_;
  DispatchImpl dispatch_;
  std::unique_ptr<ConcurrencyController> controller_;
  std::unique_ptr<TraceRecorder> trace_;
  ElasticThreadPool pool_;
  std::unique_ptr<ExecutorGroup> executors_;

  IdAllocator<ComputationTag> comp_ids_;
  Stats stats_;

  mutable std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  std::unordered_map<ComputationId, std::shared_ptr<Computation>> inflight_;
};

}  // namespace samoa
