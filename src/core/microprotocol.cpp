#include "core/microprotocol.hpp"

#include "core/errors.hpp"

namespace samoa {

namespace {
IdAllocator<MicroprotocolTag>& mp_ids() {
  static IdAllocator<MicroprotocolTag> alloc;
  return alloc;
}
IdAllocator<HandlerTag>& handler_ids() {
  static IdAllocator<HandlerTag> alloc;
  return alloc;
}
}  // namespace

Microprotocol::Microprotocol(std::string name) : id_(mp_ids().next()), name_(std::move(name)) {}

Handler& Microprotocol::register_handler(std::string name, HandlerFn fn, HandlerMode mode) {
  if (find_handler(name) != nullptr) {
    throw ConfigError("microprotocol '" + name_ + "' already has handler '" + name + "'");
  }
  handlers_.push_back(std::make_unique<Handler>(*this, handler_ids().next(), std::move(name),
                                                std::move(fn), mode));
  return *handlers_.back();
}

const Handler* Microprotocol::find_handler(const std::string& name) const {
  for (const auto& h : handlers_) {
    if (h->name() == name) return h.get();
  }
  return nullptr;
}

}  // namespace samoa
