// Computations.
//
// An external event spawns a *computation*: the closure of all handler
// executions causally dependent on it (paper Section 2). A computation may
// be multi-threaded (asynchronous event triggers fan out onto the
// runtime's pool) and is complete when its root expression returned and
// every asynchronous task has terminated. Computations are never aborted;
// even a throwing handler lets the computation run to completion so that
// the controller's Step 3 always releases the versions it acquired.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "cc/controller.hpp"
#include "core/isolation.hpp"
#include "util/ids.hpp"
#include "util/sync.hpp"

namespace samoa {

class Runtime;

/// Per-computation undo log — the rollback half of the TSO controller.
/// TxVar mutations append undo closures; a restart replays them newest
/// first. Computations are single-threaded under TSO, so no locking.
class UndoLog {
 public:
  void record(std::function<void()> undo) { entries_.push_back(std::move(undo)); }

  /// Undo everything, newest first, and clear.
  void rollback() {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) (*it)();
    entries_.clear();
  }

  void clear() { entries_.clear(); }
  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<std::function<void()>> entries_;
};

class Computation : public std::enable_shared_from_this<Computation> {
 public:
  Computation(Runtime& runtime, ComputationId id, Isolation spec,
              std::unique_ptr<ComputationCC> cc);

  Computation(const Computation&) = delete;
  Computation& operator=(const Computation&) = delete;

  ComputationId id() const { return id_; }
  Runtime& runtime() const { return runtime_; }
  ComputationCC& cc() const { return *cc_; }
  const Isolation& spec() const { return spec_; }

  /// Task accounting. The root expression counts as one task; every
  /// asynchronous trigger adds one. The task that drops the count to zero
  /// finalizes the computation (Step 3 + completion signal) on its thread.
  void task_started();
  void task_finished();

  /// Record the first error raised inside the computation; later errors
  /// are dropped. The computation still completes.
  void record_error(std::exception_ptr e);
  bool failed() const;
  /// Rethrows the recorded error, if any.
  void rethrow_if_error() const;

  bool done() const { return completed_.is_set(); }
  void wait_done();
  bool wait_done_for(std::chrono::milliseconds timeout) { return completed_.wait_for(timeout); }

  // -- rollback / restart support (TSO controller) --
  bool undo_enabled() const { return undo_enabled_; }
  void enable_undo() { undo_enabled_ = true; }
  UndoLog& undo_log() { return undo_; }
  std::uint32_t restarts() const { return restarts_; }
  void count_restart() { ++restarts_; }

 private:
  void finalize();

  Runtime& runtime_;
  ComputationId id_;
  Isolation spec_;
  std::unique_ptr<ComputationCC> cc_;

  std::atomic<std::size_t> pending_tasks_{0};
  OneShotEvent completed_;
  UndoLog undo_;
  bool undo_enabled_ = false;
  std::uint32_t restarts_ = 0;

  mutable std::mutex error_mu_;
  std::exception_ptr first_error_;
};

/// User-facing handle to a spawned computation. Shares ownership so the
/// handle stays valid however long the caller keeps it.
class ComputationHandle {
 public:
  ComputationHandle() = default;
  explicit ComputationHandle(std::shared_ptr<Computation> comp) : comp_(std::move(comp)) {}

  bool valid() const { return comp_ != nullptr; }
  ComputationId id() const { return comp_->id(); }
  bool done() const { return comp_->done(); }
  bool failed() const { return comp_->failed(); }

  /// Block until the computation completed, then rethrow its first error
  /// (if any).
  void wait() const {
    comp_->wait_done();
    comp_->rethrow_if_error();
  }

  /// Like wait() but with a timeout; returns false if still running.
  bool wait_for(std::chrono::milliseconds timeout) const {
    if (!comp_->wait_done_for(timeout)) return false;
    comp_->rethrow_if_error();
    return true;
  }

 private:
  std::shared_ptr<Computation> comp_;
};

}  // namespace samoa
