#include "core/context.hpp"

#include "core/computation.hpp"
#include "core/errors.hpp"
#include "core/runtime.hpp"
#include "core/stack.hpp"
#include "core/trace.hpp"
#include "diag/wait_registry.hpp"

namespace samoa {

Context::Context(std::shared_ptr<Computation> comp, HandlerId current)
    : comp_(std::move(comp)), current_(current) {}

Runtime& Context::runtime() const { return comp_->runtime(); }
Stack& Context::stack() const { return comp_->runtime().stack(); }
ComputationId Context::computation_id() const { return comp_->id(); }

void Context::trigger(const EventType& type, Message msg) {
  dispatch(type, msg, Fanout::kOne, /*async=*/false);
}

void Context::trigger_all(const EventType& type, Message msg) {
  dispatch(type, msg, Fanout::kAll, /*async=*/false);
}

void Context::async_trigger(const EventType& type, Message msg) {
  dispatch(type, msg, Fanout::kOne, /*async=*/true);
}

void Context::async_trigger_all(const EventType& type, Message msg) {
  dispatch(type, msg, Fanout::kAll, /*async=*/true);
}

void Context::dispatch(const EventType& type, const Message& msg, Fanout fanout, bool async) {
  Runtime& rt = comp_->runtime();
  const auto& handlers = rt.stack().bound_handlers(type.id());
  if (fanout == Fanout::kOne && handlers.size() != 1) {
    throw ConfigError("trigger '" + type.name() + "': expected exactly one bound handler, found " +
                      std::to_string(handlers.size()) + " (use trigger_all for multi-bind types)");
  }
  if (async && !comp_->cc().allows_async()) {
    throw ConfigError(std::string("asynchronous triggers are not supported under the ") +
                      rt.controller().name() +
                      " controller (a restart cannot recall in-flight tasks)");
  }
  if (async && fanout == Fanout::kAll && handlers.size() > 1) {
    if (ExecutorGroup* ex = rt.executor_group()) {
      dispatch_batched(*ex, handlers, msg);
      return;
    }
  }
  for (const Handler* h : handlers) {
    // Issue runs synchronously in this thread: declaration violations
    // (IsolationError) surface here, and VCAroute marks the callee
    // pending before the caller can complete.
    comp_->cc().on_issue(current_, *h);
    if (TraceRecorder* tr = rt.trace()) {
      tr->record(TracePhase::kIssue, comp_->id(), h->owner().id(), h->id());
    }
    if (async) {
      enqueue_handler(*h, msg);
    } else {
      run_handler_now(*h, msg);
    }
  }
}

void Context::dispatch_batched(ExecutorGroup& ex, const std::vector<const Handler*>& handlers,
                               const Message& msg) {
  Runtime& rt = comp_->runtime();
  // Group handlers by target shard, preserving binding order within each
  // group; one queue node per shard amortizes the enqueue CAS and the
  // consumer wakeup, and same-shard handlers run back-to-back in one
  // drain batch with zero cross-thread handoffs.
  std::vector<std::pair<std::size_t, std::vector<const Handler*>>> groups;
  auto flush = [&] {
    for (auto& [shard, hs] : groups) {
      for (std::size_t i = 0; i < hs.size(); ++i) comp_->task_started();
      auto comp = comp_;
      ex.submit(
          shard,
          [comp, hs = std::move(hs), msg] {
            diag::ScopedComputation diag_scope(comp->id().value());
            for (const Handler* h : hs) {
              Context ctx(comp, HandlerId{});
              try {
                ctx.run_handler_now(*h, msg);
              } catch (...) {
                comp->record_error(std::current_exception());
              }
              comp->task_finished();
            }
          },
          comp_->id().value());
    }
  };
  // Issues stay synchronous and in binding order (declaration violations
  // surface to the caller; VCAroute pending marks land before anything
  // runs). If one throws mid-way, the handlers already issued are
  // accounted for by the controller and must still execute: flush what
  // was grouped so far, then propagate.
  try {
    for (const Handler* h : handlers) {
      comp_->cc().on_issue(current_, *h);
      if (TraceRecorder* tr = rt.trace()) {
        tr->record(TracePhase::kIssue, comp_->id(), h->owner().id(), h->id());
      }
      const std::size_t shard = ex.shard_of(h->owner().id().value());
      auto it = groups.begin();
      for (; it != groups.end(); ++it) {
        if (it->first == shard) break;
      }
      if (it == groups.end()) {
        groups.push_back({shard, {}});
        it = std::prev(groups.end());
      }
      it->second.push_back(h);
    }
  } catch (...) {
    flush();
    throw;
  }
  flush();
}

void Context::yield_point(const char* label) {
  if (StepHook* hook = comp_->runtime().step_hook()) hook->step_point(comp_->id(), label);
}

void Context::run_handler_now(const Handler& h, const Message& msg) {
  Runtime& rt = comp_->runtime();
  // A scheduling point before the gate: the explorer may interleave any
  // other runnable computation between the issue and this execution.
  if (StepHook* hook = rt.step_hook()) hook->step_point(comp_->id(), "before-execute");
  comp_->cc().before_execute(h);  // version gate (Rule 2); may block
  // The gate may have parked this thread (releasing the exploration token
  // via the wait observer); re-acquire it before the kStart record so the
  // trace order is schedule-determined, not OS-timing-determined.
  if (StepHook* hook = rt.step_hook()) hook->resync(comp_->id());
  if (TraceRecorder* tr = rt.trace()) {
    tr->record(TracePhase::kStart, comp_->id(), h.owner().id(), h.id(), h.read_only());
  }
  rt.count_handler_call();
  Context inner(comp_, h.id());
  // after_execute must run even if the handler throws: VCAbound's Rule 4
  // and VCAroute's status bookkeeping are what keep other computations
  // live. The exception propagates to the (synchronous) caller, as in
  // J-SAMOA.
  try {
    h.invoke(inner, msg);
  } catch (...) {
    if (TraceRecorder* tr = rt.trace()) {
      tr->record(TracePhase::kEnd, comp_->id(), h.owner().id(), h.id(), h.read_only());
    }
    comp_->cc().after_execute(h);
    throw;
  }
  if (TraceRecorder* tr = rt.trace()) {
    tr->record(TracePhase::kEnd, comp_->id(), h.owner().id(), h.id(), h.read_only());
  }
  comp_->cc().after_execute(h);
}

void Context::enqueue_handler(const Handler& h, Message msg) {
  comp_->task_started();
  Runtime& rt = comp_->runtime();
  StepHook* hook = rt.step_hook();
  const std::uint64_t ticket = hook != nullptr ? hook->on_task_submitted(comp_->id()) : 0;
  auto comp = comp_;
  auto task = [comp, &h, hook, ticket, msg = std::move(msg)]() mutable {
    diag::ScopedComputation diag_scope(comp->id().value());
    if (hook != nullptr) hook->on_task_started(comp->id(), ticket);
    Context ctx(comp, HandlerId{});
    try {
      ctx.run_handler_now(h, msg);
    } catch (...) {
      // Asynchronous handlers have no caller to propagate to: record on
      // the computation, rethrown from ComputationHandle::wait().
      comp->record_error(std::current_exception());
    }
    comp->task_finished();
    if (hook != nullptr) hook->on_task_finished(comp->id());
  };
  // Route to the owning microprotocol's shard (hook != nullptr implies the
  // executor is disabled — see RuntimeOptions::dispatch_impl).
  if (ExecutorGroup* ex = rt.executor_group()) {
    ex->submit(ex->shard_of(h.owner().id().value()), std::move(task), comp->id().value());
  } else {
    rt.pool().submit(std::move(task), comp->id().value());
  }
}

}  // namespace samoa
