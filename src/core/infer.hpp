// Inference of isolation declarations.
//
// Section 4 of the paper remarks that "in the strongly-typed language, the
// proper value of argument M could be inferred statically". C++ lambdas
// are opaque, so samoa-cpp provides the moral equivalent: microprotocols
// declare which event types each handler may trigger (cheap, checkable
// metadata), and the inference walks the binding table to compute
//
//   * the microprotocol set M for `isolated M e`            (infer_members)
//   * the handler graph for `isolated route M e`            (infer_route)
//
// from the set of event types the root expression may trigger. Inference
// is conservative: it follows every declared trigger regardless of runtime
// data, so the result over-approximates the actual call footprint — which
// is exactly what a legal declaration needs (over-declaration is allowed,
// under-declaration throws IsolationError at run time).
#pragma once

#include <vector>

#include "core/isolation.hpp"
#include "core/stack.hpp"

namespace samoa {

/// Registry of declared handler -> event-type triggers. Populate with
/// declare() during protocol composition; handlers without declarations
/// are treated as leaves (they trigger nothing).
class TriggerDeclarations {
 public:
  /// Declare that `handler`'s body may trigger `event`.
  TriggerDeclarations& declare(const Handler& handler, const EventType& event);

  const std::vector<EventTypeId>& triggers_of(HandlerId handler) const;

 private:
  std::unordered_map<HandlerId, std::vector<EventTypeId>> triggers_;
};

/// Microprotocols whose handlers are reachable when the root expression
/// triggers any of `root_events`, following `decls` over the stack's
/// bindings. Usable directly as Isolation::basic(...) input — returns the
/// ready declaration.
Isolation infer_members(const Stack& stack, const TriggerDeclarations& decls,
                        const std::vector<EventType>& root_events);

/// The routing pattern for the same computation type: entries are the
/// handlers bound to `root_events`; an edge h1 -> h2 exists when h1
/// declares a trigger of an event type h2 is bound to. Returns the ready
/// `isolated route` declaration (resolve happens at spawn).
Isolation infer_route(const Stack& stack, const TriggerDeclarations& decls,
                      const std::vector<EventType>& root_events);

}  // namespace samoa
