#include "core/isolation.hpp"

#include <algorithm>

#include "core/errors.hpp"
#include "core/stack.hpp"

namespace samoa {

Isolation Isolation::basic(std::vector<const Microprotocol*> mps) {
  Isolation iso(Kind::Basic);
  for (const auto* mp : mps) {
    if (mp == nullptr) throw ConfigError("Isolation::basic: null microprotocol");
    if (!iso.declares(mp->id())) iso.members_.push_back(mp->id());
  }
  return iso;
}

Isolation Isolation::bound(std::vector<std::pair<const Microprotocol*, std::uint32_t>> bounds) {
  Isolation iso(Kind::Bound);
  for (const auto& [mp, b] : bounds) {
    if (mp == nullptr) throw ConfigError("Isolation::bound: null microprotocol");
    if (b == 0) throw ConfigError("Isolation::bound: bound must be >= 1 for " + mp->name());
    if (iso.declares(mp->id())) throw ConfigError("Isolation::bound: duplicate " + mp->name());
    iso.members_.push_back(mp->id());
    iso.bounds_.emplace(mp->id(), b);
  }
  return iso;
}

Isolation Isolation::route(RouteSpec spec) {
  Isolation iso(Kind::Route);
  iso.route_ = std::move(spec);
  return iso;
}

Isolation Isolation::read_write(std::vector<std::pair<const Microprotocol*, Access>> accesses) {
  Isolation iso(Kind::ReadWrite);
  for (const auto& [mp, access] : accesses) {
    if (mp == nullptr) throw ConfigError("Isolation::read_write: null microprotocol");
    if (iso.declares(mp->id())) {
      throw ConfigError("Isolation::read_write: duplicate " + mp->name());
    }
    iso.members_.push_back(mp->id());
    iso.accesses_.emplace(mp->id(), access);
  }
  return iso;
}

bool Isolation::declares(MicroprotocolId mp) const {
  return std::find(members_.begin(), members_.end(), mp) != members_.end();
}

void Isolation::resolve_route(const Stack& stack) {
  if (kind_ != Kind::Route) return;
  members_.clear();
  route_owners_.clear();
  auto note_handler = [&](HandlerId h) {
    const Handler* handler = stack.find_handler(h);
    if (handler == nullptr) {
      throw ConfigError("Isolation::route: handler not found in stack");
    }
    const MicroprotocolId mp = handler->owner().id();
    route_owners_.emplace(h, mp);
    if (!declares(mp)) members_.push_back(mp);
  };
  for (HandlerId h : route_.entries) note_handler(h);
  for (const auto& [from, to] : route_.edges) {
    note_handler(from);
    note_handler(to);
  }
  if (members_.empty()) {
    throw ConfigError("Isolation::route: empty routing pattern");
  }
}

std::string Isolation::describe() const {
  switch (kind_) {
    case Kind::Basic:
      return "isolated";
    case Kind::Bound:
      return "isolated bound";
    case Kind::Route:
      return "isolated route";
    case Kind::ReadWrite:
      return "isolated rw";
  }
  return "?";
}

}  // namespace samoa
