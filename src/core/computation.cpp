#include "core/computation.hpp"

#include <stdexcept>

#include "core/runtime.hpp"
#include "diag/wait_registry.hpp"

namespace samoa {

Computation::Computation(Runtime& runtime, ComputationId id, Isolation spec,
                         std::unique_ptr<ComputationCC> cc)
    : runtime_(runtime), id_(id), spec_(std::move(spec)), cc_(std::move(cc)) {}

void Computation::task_started() { pending_tasks_.fetch_add(1, std::memory_order_acq_rel); }

void Computation::task_finished() {
  const auto prev = pending_tasks_.fetch_sub(1, std::memory_order_acq_rel);
  if (prev == 0) throw std::logic_error("Computation::task_finished without task_started");
  if (prev == 1) finalize();
}

void Computation::finalize() {
  // The computation's execution is complete here (all tasks terminated);
  // record kDone before Step 3 releases any version, so that a successor's
  // first kStart always follows this computation's kDone in the trace.
  runtime_.record_computation_done(id_);
  // Step 3 of the algorithms: may block until older computations released
  // the shared microprotocols. Runs exactly once, on the thread of the
  // last task to finish.
  try {
    cc_->on_complete();
  } catch (...) {
    record_error(std::current_exception());
  }
  // on_complete may have parked (Step 3's wait) and lost the exploration
  // token; re-acquire it before the observable completion transitions.
  if (StepHook* hook = runtime_.step_hook()) hook->resync(id_);
  // Book-keeping before the completion signal: a waiter woken by
  // completed_ must observe the runtime's final counters.
  runtime_.on_computation_done(id_);
  diag::WaitRegistry::instance().note_progress();
  completed_.set();
}

void Computation::wait_done() {
  if (completed_.is_set()) return;
  diag::ScopedWait wait(diag::WaitKind::kCompletion, this, "computation", id_.value(),
                        id_.value() + 1, 0);
  completed_.wait();
}

void Computation::record_error(std::exception_ptr e) {
  std::unique_lock lock(error_mu_);
  if (!first_error_) first_error_ = std::move(e);
}

bool Computation::failed() const {
  std::unique_lock lock(error_mu_);
  return first_error_ != nullptr;
}

void Computation::rethrow_if_error() const {
  std::exception_ptr e;
  {
    std::unique_lock lock(error_mu_);
    e = first_error_;
  }
  if (e) std::rethrow_exception(e);
}

}  // namespace samoa
