#include "core/infer.hpp"

#include <deque>
#include <unordered_set>

#include "core/errors.hpp"

namespace samoa {

TriggerDeclarations& TriggerDeclarations::declare(const Handler& handler,
                                                  const EventType& event) {
  triggers_[handler.id()].push_back(event.id());
  return *this;
}

const std::vector<EventTypeId>& TriggerDeclarations::triggers_of(HandlerId handler) const {
  static const std::vector<EventTypeId> kEmpty;
  auto it = triggers_.find(handler);
  return it == triggers_.end() ? kEmpty : it->second;
}

namespace {

/// BFS over bindings + declared triggers; visits every reachable handler.
/// Calls `on_edge(from, to)` for each declared call edge (from invalid =
/// root) and returns the visited handler set.
template <typename OnEdge>
std::unordered_set<HandlerId> walk(const Stack& stack, const TriggerDeclarations& decls,
                                   const std::vector<EventType>& root_events, OnEdge on_edge) {
  std::unordered_set<HandlerId> visited;
  std::deque<const Handler*> queue;
  auto expand = [&](HandlerId from, EventTypeId ev) {
    for (const Handler* target : stack.bound_handlers(ev)) {
      on_edge(from, *target);
      if (visited.insert(target->id()).second) queue.push_back(target);
    }
  };
  for (const EventType& ev : root_events) expand(HandlerId{}, ev.id());
  while (!queue.empty()) {
    const Handler* h = queue.front();
    queue.pop_front();
    for (EventTypeId ev : decls.triggers_of(h->id())) expand(h->id(), ev);
  }
  return visited;
}

}  // namespace

Isolation infer_members(const Stack& stack, const TriggerDeclarations& decls,
                        const std::vector<EventType>& root_events) {
  std::vector<const Microprotocol*> members;
  std::unordered_set<MicroprotocolId> seen;
  auto visited = walk(stack, decls, root_events, [&](HandlerId, const Handler& to) {
    if (seen.insert(to.owner().id()).second) members.push_back(&to.owner());
  });
  if (visited.empty()) {
    throw ConfigError("infer_members: no handler is bound to any of the root event types");
  }
  return Isolation::basic(std::move(members));
}

Isolation infer_route(const Stack& stack, const TriggerDeclarations& decls,
                      const std::vector<EventType>& root_events) {
  RouteSpec spec;
  std::unordered_set<std::uint64_t> edge_seen;
  auto visited = walk(stack, decls, root_events, [&](HandlerId from, const Handler& to) {
    if (!from.valid()) {
      spec.entry(to);
      return;
    }
    const std::uint64_t key = (static_cast<std::uint64_t>(from.value()) << 32) | to.id().value();
    if (edge_seen.insert(key).second) {
      const Handler* from_handler = stack.find_handler(from);
      spec.edge(*from_handler, to);
    }
  });
  if (visited.empty()) {
    throw ConfigError("infer_route: no handler is bound to any of the root event types");
  }
  return Isolation::route(std::move(spec));
}

}  // namespace samoa
