#include "core/event.hpp"

namespace samoa {

namespace {
IdAllocator<EventTypeTag>& event_type_ids() {
  static IdAllocator<EventTypeTag> alloc;
  return alloc;
}
}  // namespace

EventType::EventType(std::string name)
    : id_(event_type_ids().next()),
      name_(std::make_shared<const std::string>(std::move(name))) {}

}  // namespace samoa
