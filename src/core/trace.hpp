// Run tracing.
//
// A *run* in the paper is a list of (event, handler) pairs ordered by the
// time handlers commence. The TraceRecorder captures this order (plus
// handler completion, so accesses become intervals) with a single atomic
// sequence counter; the verify/ checker replays recorded runs to decide
// whether an execution satisfied the isolation property.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/ids.hpp"
#include "util/stats.hpp"

namespace samoa {

enum class TracePhase : std::uint8_t {
  kIssue,  // event issued (handler requested; may be pending)
  kStart,  // handler commenced
  kEnd,    // handler completed
  kSpawn,  // computation spawned (external event)
  kDone,   // computation completed
  kAbort,  // computation rolled back (TSO restart); prior accesses undone
};

struct TraceEvent {
  std::uint64_t seq = 0;  // total order consistent with real time
  TracePhase phase{};
  ComputationId computation;
  MicroprotocolId microprotocol;  // invalid for kSpawn/kDone
  HandlerId handler;              // invalid for kSpawn/kDone
  /// True when the executed handler was declared read-only; read-only
  /// accesses of different computations do not conflict.
  bool read_only = false;
};

const char* to_string(TracePhase phase);

class TraceRecorder {
 public:
  void record(TracePhase phase, ComputationId k, MicroprotocolId mp, HandlerId h,
              bool read_only = false);

  /// Snapshot of all events so far, sorted by seq.
  std::vector<TraceEvent> snapshot() const;

  void clear();

  /// Render a recorded run the way the paper writes them:
  /// ((a0, P), (a1, R), ...) using microprotocol names resolved by caller.
  static std::string format(const std::vector<TraceEvent>& events);

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace samoa
