#include "core/runtime.hpp"

#include <cstdlib>
#include <string_view>

#include "core/errors.hpp"
#include "diag/wait_registry.hpp"

namespace samoa {

namespace {

DispatchImpl resolve_dispatch(DispatchImpl requested, const StepHook* hook) {
  DispatchImpl impl = requested;
  if (impl == DispatchImpl::kAuto) {
    impl = DispatchImpl::kExecutor;
    if (const char* env = std::getenv("SAMOA_DISPATCH")) {
      if (std::string_view(env) == "pool") impl = DispatchImpl::kElasticPool;
    }
  }
  // Exploration always drives the per-task pool path; see the
  // RuntimeOptions::dispatch_impl comment.
  if (hook != nullptr) impl = DispatchImpl::kElasticPool;
  return impl;
}

}  // namespace

Runtime::Runtime(Stack& stack, RuntimeOptions opts)
    : stack_(stack),
      opts_(opts),
      dispatch_(resolve_dispatch(opts.dispatch_impl, opts.step_hook)),
      controller_(make_controller(opts.policy)),
      trace_(opts.record_trace ? std::make_unique<TraceRecorder>() : nullptr),
      pool_(ElasticThreadPool::Options{opts.min_threads, opts.max_threads,
                                       std::chrono::milliseconds(200)}),
      executors_(dispatch_ == DispatchImpl::kExecutor
                     ? std::make_unique<ExecutorGroup>(opts.executor, &controller_->stats())
                     : nullptr) {}

Runtime::~Runtime() {
  drain();
  if (executors_ != nullptr) executors_->shutdown();
  pool_.shutdown();
}

void Runtime::submit_root(std::uint64_t comp_id, std::function<void()> fn) {
  if (executors_ != nullptr) {
    executors_->submit(executors_->next_shard(), std::move(fn), comp_id);
  } else {
    pool_.submit(std::move(fn), comp_id);
  }
}

std::function<void()> Runtime::root_task(std::shared_ptr<Computation> comp,
                                         std::function<void(Context&)> root,
                                         std::uint64_t ticket) {
  return [this, comp = std::move(comp), ticket, root = std::move(root)] {
    diag::ScopedComputation diag_scope(comp->id().value());
    StepHook* hook = opts_.step_hook;
    if (hook != nullptr) hook->on_task_started(comp->id(), ticket);
    // The loop only repeats under TSO, whose wait-die losers roll back
    // their TxVar state and re-run with a fresh timestamp. The versioning
    // controllers never abort, so the first pass is the only pass.
    constexpr std::uint32_t kMaxRestarts = 1000;
    for (;;) {
      Context ctx(comp, HandlerId{});
      try {
        comp->cc().on_start();
        // on_start may have parked (serial turnstile) and lost the
        // exploration token; re-acquire it with no locks held before
        // running observable work.
        if (hook != nullptr) hook->resync(comp->id());
        root(ctx);
      } catch (const RestartNeeded&) {
        // Order matters: roll the TxVar state back *while the claims are
        // still held* — releasing first would let another computation read
        // (and build on) state the rollback is about to clobber.
        comp->undo_log().rollback();  // restore TxVar state
        comp->cc().on_abort();        // then release claims; keeps its timestamp
        if (hook != nullptr) hook->resync(comp->id());  // on_abort may park (death wait)
        // Everything this pass touched has been undone; tell the trace so
        // the isolation checker ignores the aborted accesses. The retry
        // keeps the original timestamp (classic wait-die), so a restarted
        // computation only ever gets older relative to newcomers and
        // cannot starve.
        if (trace_) {
          trace_->record(TracePhase::kAbort, comp->id(), MicroprotocolId{}, HandlerId{});
        }
        comp->count_restart();
        if (comp->restarts() >= kMaxRestarts) {
          comp->record_error(std::make_exception_ptr(
              SamoaError("TSO computation exceeded the restart limit (livelock?)")));
          break;
        }
        continue;
      } catch (...) {
        comp->record_error(std::current_exception());
      }
      comp->undo_log().clear();  // committed: drop the rollback entries
      break;
    }
    comp->cc().on_root_done();
    if (hook != nullptr) hook->resync(comp->id());
    // If this was the computation's last task, task_finished runs
    // finalize (on_complete + completion signal) on this thread, still
    // under the exploration token; the token is released for good below.
    comp->task_finished();
    if (hook != nullptr) hook->on_task_finished(comp->id());
  };
}

ComputationHandle Runtime::spawn_isolated(Isolation spec, std::function<void(Context&)> root) {
  if (!stack_.sealed()) stack_.seal();
  if (spec.kind() == Isolation::Kind::Route) spec.resolve_route(stack_);

  const ComputationId id = comp_ids_.next();
  // Step 1 (atomic admission) happens inside the controller.
  auto cc = controller_->admit(id, spec);
  auto comp = std::make_shared<Computation>(*this, id, std::move(spec), std::move(cc));
  if (opts_.policy == CCPolicy::kTSO) comp->enable_undo();

  {
    std::unique_lock lock(inflight_mu_);
    inflight_.emplace(id, comp);
  }
  // Pin virtual time for the lifetime of the computation: the simulated
  // clock must not advance (and no further event may dispatch) until the
  // work this event triggered has fully completed. The matching unpin is
  // tied to removing `id` from inflight_ (normally in on_computation_done;
  // in the catch below if tracing or submission throws) — whichever path
  // wins the erase unpins, so the pin is released exactly once even when
  // pool_.submit enqueues the task before throwing. A leaked pin would
  // freeze virtual time forever.
  if (opts_.clock != nullptr) opts_.clock->pin();
  try {
    stats_.spawned.add();
    if (trace_) trace_->record(TracePhase::kSpawn, id, MicroprotocolId{}, HandlerId{});

    comp->task_started();  // the root expression counts as one task
    const std::uint64_t ticket =
        opts_.step_hook != nullptr ? opts_.step_hook->on_task_submitted(id) : 0;
    submit_root(id.value(), root_task(comp, std::move(root), ticket));
  } catch (...) {
    if (remove_inflight(id) && opts_.clock != nullptr) opts_.clock->unpin();
    throw;
  }
  return ComputationHandle(comp);
}

std::vector<ComputationHandle> Runtime::spawn_isolated_batch(std::vector<SpawnRequest> reqs) {
  std::vector<ComputationHandle> handles;
  if (reqs.empty()) return handles;
  if (!stack_.sealed()) stack_.seal();
  for (SpawnRequest& r : reqs) {
    if (r.spec.kind() == Isolation::Kind::Route) r.spec.resolve_route(stack_);
  }

  // Step 1 for the whole burst: ids in request order, then one controller
  // batch admission — versions claimed respect request order on every
  // shared microprotocol, exactly as if spawn_isolated ran sequentially.
  std::vector<AdmitRequest> admits;
  admits.reserve(reqs.size());
  for (const SpawnRequest& r : reqs) admits.push_back({comp_ids_.next(), &r.spec});
  auto ccs = controller_->admit_batch(admits);

  std::vector<std::shared_ptr<Computation>> comps;
  comps.reserve(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    auto comp = std::make_shared<Computation>(*this, admits[i].k, std::move(reqs[i].spec),
                                              std::move(ccs[i]));
    if (opts_.policy == CCPolicy::kTSO) comp->enable_undo();
    comps.push_back(std::move(comp));
  }
  {
    std::unique_lock lock(inflight_mu_);
    for (const auto& comp : comps) inflight_.emplace(comp->id(), comp);
  }
  // Same pin/unpin discipline as spawn_isolated, one pin per computation;
  // on a submission failure every not-yet-completed member is rolled out.
  if (opts_.clock != nullptr) {
    for (std::size_t i = 0; i < comps.size(); ++i) opts_.clock->pin();
  }
  try {
    stats_.spawned.add(comps.size());
    if (executors_ != nullptr) {
      // Shard-major enqueue in admission order (the executor implies no
      // step hook, so tickets are 0): the burst is split into contiguous
      // chunks, one chunk per shard, each root task still its own queue
      // node. Contiguous runs amortize the consumer wakeup (the first
      // submit of a chunk wakes the shard, the rest land on a running
      // consumer's run-to-completion batch) where interleaved round-robin
      // pays a cross-thread wakeup per task; every shard still gets a
      // chunk, so burst members may overlap, with the versions claimed by
      // admit_batch ordering the conflicts.
      const std::size_t nshards = executors_->shard_count();
      const std::size_t chunk = (comps.size() + nshards - 1) / nshards;
      const std::size_t base = executors_->next_shard();
      for (std::size_t i = 0; i < comps.size(); ++i) {
        auto& comp = comps[i];
        if (trace_) {
          trace_->record(TracePhase::kSpawn, comp->id(), MicroprotocolId{}, HandlerId{});
        }
        comp->task_started();  // the root expression counts as one task
        executors_->submit((base + i / chunk) % nshards,
                           root_task(comp, std::move(reqs[i].root), /*ticket=*/0),
                           comp->id().value());
      }
    } else {
      std::vector<ElasticThreadPool::Task> tasks;
      tasks.reserve(comps.size());
      for (std::size_t i = 0; i < comps.size(); ++i) {
        auto& comp = comps[i];
        if (trace_) {
          trace_->record(TracePhase::kSpawn, comp->id(), MicroprotocolId{}, HandlerId{});
        }
        comp->task_started();  // the root expression counts as one task
        const std::uint64_t ticket =
            opts_.step_hook != nullptr ? opts_.step_hook->on_task_submitted(comp->id()) : 0;
        tasks.push_back({root_task(comp, std::move(reqs[i].root), ticket), comp->id().value()});
      }
      pool_.submit_batch(std::move(tasks));
    }
  } catch (...) {
    for (const auto& comp : comps) {
      if (remove_inflight(comp->id()) && opts_.clock != nullptr) opts_.clock->unpin();
    }
    throw;
  }
  handles.reserve(comps.size());
  for (auto& comp : comps) handles.emplace_back(std::move(comp));
  return handles;
}

void Runtime::record_computation_done(ComputationId id) {
  if (trace_) trace_->record(TracePhase::kDone, id, MicroprotocolId{}, HandlerId{});
}

bool Runtime::remove_inflight(ComputationId id) {
  std::unique_lock lock(inflight_mu_);
  const bool removed = inflight_.erase(id) > 0;
  if (removed) inflight_cv_.notify_all();
  return removed;
}

void Runtime::on_computation_done(ComputationId id) {
  stats_.completed.add();
  if (remove_inflight(id) && opts_.clock != nullptr) opts_.clock->unpin();
}

void Runtime::drain() {
  std::unique_lock lock(inflight_mu_);
  if (inflight_.empty()) return;
  diag::ScopedWait wait(diag::WaitKind::kDrain, this, "runtime-drain", 0, 0, inflight_.size());
  inflight_cv_.wait(lock, [this] { return inflight_.empty(); });
}

}  // namespace samoa
