// Serial controller — the Appia-like baseline.
//
// Computations execute one at a time, in spawn (FIFO) order: the simplest
// way to satisfy the isolation property ("the simplest possible solution
// would be to block spawning of a new computation until any other
// computations complete", paper Section 5). spawn_isolated itself never
// blocks (an Appia channel enqueues external events); the computation's
// root task waits for its turn instead.
//
// Each parked ticket waits on its own condition variable, registered
// under its ticket number, so advancing the turnstile wakes exactly the
// next ticket — not every parked computation (the same targeted-wakeup
// discipline as VersionGate; a shared broadcast cv makes each turn cost
// O(backlog) wakeups and livelocks under a convoy).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "cc/controller.hpp"

namespace samoa {

class SerialController : public ConcurrencyController {
 public:
  ~SerialController() override;

  std::unique_ptr<ComputationCC> admit(ComputationId k, const Isolation& spec) override;
  const char* name() const override { return "serial"; }

 private:
  friend class SerialComputationCC;

  /// One parked ticket: its cv plus the waiting computation (wakeup
  /// accounting for the schedule explorer — `counted` guards the single
  /// delivery report per park). Stack-allocated by the waiting thread.
  struct TurnWaiter {
    std::condition_variable* cv = nullptr;
    std::uint64_t comp = 0;
    bool counted = false;
  };

  std::mutex mu_;
  std::uint64_t next_ticket_ = 0;
  std::uint64_t now_serving_ = 0;
  /// ticket -> that ticket's parked waiter (tickets are unique, so at most
  /// one waiter per key).
  std::unordered_map<std::uint64_t, TurnWaiter> waiters_;
};

}  // namespace samoa
