// Serial controller — the Appia-like baseline.
//
// Computations execute one at a time, in spawn (FIFO) order: the simplest
// way to satisfy the isolation property ("the simplest possible solution
// would be to block spawning of a new computation until any other
// computations complete", paper Section 5). spawn_isolated itself never
// blocks (an Appia channel enqueues external events); the computation's
// root task waits for its turn instead.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "cc/controller.hpp"

namespace samoa {

class SerialController : public ConcurrencyController {
 public:
  std::unique_ptr<ComputationCC> admit(ComputationId k, const Isolation& spec) override;
  const char* name() const override { return "serial"; }

 private:
  friend class SerialComputationCC;

  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t next_ticket_ = 0;
  std::uint64_t now_serving_ = 0;
};

}  // namespace samoa
