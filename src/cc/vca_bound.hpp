// VCAbound — Version-Counting with Least-Upper-Bound (paper Section 5.2).
//
// The declaration carries, for each microprotocol p, the least upper bound
// bound[p] on the number of times the computation may visit p. Admission
// advances gv_p by bound[p], giving the computation the version *window*
// [pv - bound, pv). Rule 4 increments lv_p after every completed handler
// execution, so once a computation used up its budget on p, lv_p reaches
// pv[p] and the *next* computation's window opens — before the current one
// completes. This is the extra parallelism over VCAbasic.
//
// Exhausting the declared bound raises IsolationError at issue time, as
// required by Section 4 ("a runtime error exception will be thrown if the
// number is exhausted").
#pragma once

#include "cc/controller.hpp"
#include "cc/version_gate.hpp"

namespace samoa {

class VCABoundController : public ConcurrencyController {
 public:
  std::unique_ptr<ComputationCC> admit(ComputationId k, const Isolation& spec) override;
  const char* name() const override { return "VCAbound"; }

 private:
  friend class VCABoundComputationCC;

  GateTable gates_;
};

}  // namespace samoa
