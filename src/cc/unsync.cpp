#include "cc/unsync.hpp"

namespace samoa {

namespace {

class UnsyncComputationCC : public ComputationCC {
 public:
  void on_issue(HandlerId, const Handler&) override {}
  void before_execute(const Handler&) override {}
  void after_execute(const Handler&) override {}
  void on_complete() override {}
};

}  // namespace

std::unique_ptr<ComputationCC> UnsyncController::admit(ComputationId, const Isolation&) {
  stats_.admissions.add();
  return std::make_unique<UnsyncComputationCC>();
}

}  // namespace samoa
