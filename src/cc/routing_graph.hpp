// Routing graphs for VCAroute (paper Section 5.3).
//
// The declaration of `isolated route M e` is a directed graph over handler
// names: an arrow h1 -> h2 states that the body of h1 may call h2, and the
// entry set lists the handlers the root expression e may call directly.
// Graphs are small (a handful of handlers), so we precompute the
// transitive closure at admission and answer path and reachability queries
// from it in O(1)/O(nodes).
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/isolation.hpp"
#include "util/ids.hpp"

namespace samoa {

class RoutingGraph {
 public:
  RoutingGraph(const RouteSpec& spec,
               const std::unordered_map<HandlerId, MicroprotocolId>& owners);

  bool has_node(HandlerId h) const { return closure_.contains(h); }
  bool is_entry(HandlerId h) const { return entries_.contains(h); }

  /// True if the body of `from` may (transitively) call `to`:
  /// there is a directed path of length >= 1 from `from` to `to`.
  bool has_path(HandlerId from, HandlerId to) const;

  MicroprotocolId owner(HandlerId h) const { return owners_.at(h); }
  const std::vector<MicroprotocolId>& microprotocols() const { return mps_; }
  const std::vector<HandlerId>& handlers_of(MicroprotocolId mp) const {
    return mp_handlers_.at(mp);
  }

  /// All handlers reachable (path length >= 0) from any of `sources`.
  std::unordered_set<HandlerId> reachable_from(const std::vector<HandlerId>& sources) const;

  /// All handlers reachable from the entry set (the virtual ROOT node),
  /// including the entries themselves.
  std::unordered_set<HandlerId> reachable_from_root() const;

 private:
  void add_node(HandlerId h, const std::unordered_map<HandlerId, MicroprotocolId>& owners);

  std::unordered_set<HandlerId> entries_;
  std::unordered_map<HandlerId, std::unordered_set<HandlerId>> closure_;  // strict successors
  std::unordered_map<HandlerId, MicroprotocolId> owners_;
  std::unordered_map<MicroprotocolId, std::vector<HandlerId>> mp_handlers_;
  std::vector<MicroprotocolId> mps_;
};

}  // namespace samoa
