#include "cc/vca_basic.hpp"

#include <sstream>
#include <unordered_map>

#include "core/errors.hpp"

namespace samoa {

class VCABasicComputationCC : public ComputationCC {
 public:
  VCABasicComputationCC(VCABasicController& ctrl, ComputationId k,
                        std::unordered_map<MicroprotocolId, std::uint64_t> pv)
      : ctrl_(ctrl), k_(k), pv_(std::move(pv)) {}

  void on_issue(HandlerId, const Handler& h) override {
    if (!pv_.contains(h.owner().id())) {
      std::ostringstream os;
      os << "isolated: computation " << k_ << " called handler '" << h.name()
         << "' of undeclared microprotocol '" << h.owner().name() << "'";
      throw IsolationError(os.str());
    }
  }

  void before_execute(const Handler& h) override {
    const auto pv = pv_.at(h.owner().id());
    ctrl_.gates_.gate(h.owner().id()).wait_exact(pv - 1, ctrl_.stats_, h.owner().name().c_str());
  }

  void after_execute(const Handler&) override {}

  void on_complete() override {
    // Step 3: upgrade in admission order is implied — each wait_exact can
    // only be satisfied once every older computation upgraded, so the
    // iteration order over pv_ is irrelevant for correctness.
    for (const auto& [mp, pv] : pv_) {
      auto& gate = ctrl_.gates_.gate(mp);
      gate.wait_exact(pv - 1, ctrl_.stats_);
      gate.set_lv(pv);
    }
  }

 private:
  VCABasicController& ctrl_;
  ComputationId k_;
  std::unordered_map<MicroprotocolId, std::uint64_t> pv_;
};

std::unique_ptr<ComputationCC> VCABasicController::admit(ComputationId k, const Isolation& spec) {
  stats_.admissions.add();
  std::unordered_map<MicroprotocolId, std::uint64_t> pv;
  const auto& members = spec.members();
  if (members.size() == 1) {
    // Fast path: one microprotocol means one counter, so the admission is
    // atomic by construction — a single lock-free fetch_add.
    stats_.admit_fast.add();
    const MicroprotocolId mp = members.front();
    pv.emplace(mp, gates_.gate(mp).admit(1, k.value()));
  } else {
    // Slow path: Step 1 must bump every member gate as one indivisible
    // step. Holding all member admission locks in mp-id order serializes
    // any two admissions that share gates, which keeps the version order
    // identical on every shared microprotocol (total wait-for order).
    stats_.admit_slow.add();
    OrderedAdmission locks(gates_, members);
    for (MicroprotocolId mp : members) {
      pv.emplace(mp, gates_.gate(mp).admit(1, k.value()));
    }
  }
  return std::make_unique<VCABasicComputationCC>(*this, k, std::move(pv));
}

std::vector<std::unique_ptr<ComputationCC>> VCABasicController::admit_batch(
    const std::vector<AdmitRequest>& reqs) {
  stats_.admissions.add(reqs.size());
  stats_.admissions_batched.add(reqs.size());
  std::vector<std::unique_ptr<ComputationCC>> out;
  out.reserve(reqs.size());

  bool all_single = true;
  for (const AdmitRequest& r : reqs) all_single &= (r.spec->members().size() == 1);

  if (all_single) {
    // One fetch_add per distinct gate claims a consecutive version range;
    // sub-versions are handed out in batch order, so on every gate the
    // batch is indistinguishable from admitting its members one by one.
    stats_.admit_fast.add(reqs.size());
    std::unordered_map<MicroprotocolId, std::uint64_t> counts;
    for (const AdmitRequest& r : reqs) ++counts[r.spec->members().front()];
    std::unordered_map<MicroprotocolId, std::uint64_t> next;
    for (const auto& [mp, n] : counts) {
      next.emplace(mp, gates_.gate(mp).claim_range(n) - n + 1);
    }
    for (const AdmitRequest& r : reqs) {
      const MicroprotocolId mp = r.spec->members().front();
      const std::uint64_t pv_k = next.at(mp)++;
      gates_.gate(mp).note_holder(pv_k, r.k.value());
      std::unordered_map<MicroprotocolId, std::uint64_t> pv;
      pv.emplace(mp, pv_k);
      out.push_back(std::make_unique<VCABasicComputationCC>(*this, r.k, std::move(pv)));
    }
    return out;
  }

  // Mixed batch: one lock-ordered transaction over the union of all member
  // gates makes the whole burst a single indivisible admission step.
  stats_.admit_slow.add(reqs.size());
  std::vector<MicroprotocolId> union_mps;
  for (const AdmitRequest& r : reqs) {
    union_mps.insert(union_mps.end(), r.spec->members().begin(), r.spec->members().end());
  }
  OrderedAdmission locks(gates_, union_mps);
  for (const AdmitRequest& r : reqs) {
    std::unordered_map<MicroprotocolId, std::uint64_t> pv;
    for (MicroprotocolId mp : r.spec->members()) {
      pv.emplace(mp, gates_.gate(mp).admit(1, r.k.value()));
    }
    out.push_back(std::make_unique<VCABasicComputationCC>(*this, r.k, std::move(pv)));
  }
  return out;
}

}  // namespace samoa
