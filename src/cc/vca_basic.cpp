#include "cc/vca_basic.hpp"

#include <sstream>
#include <unordered_map>

#include "core/errors.hpp"
#include "diag/wait_registry.hpp"

namespace samoa {

class VCABasicComputationCC : public ComputationCC {
 public:
  VCABasicComputationCC(VCABasicController& ctrl, ComputationId k,
                        std::unordered_map<MicroprotocolId, std::uint64_t> pv)
      : ctrl_(ctrl), k_(k), pv_(std::move(pv)) {}

  void on_issue(HandlerId, const Handler& h) override {
    if (!pv_.contains(h.owner().id())) {
      std::ostringstream os;
      os << "isolated: computation " << k_ << " called handler '" << h.name()
         << "' of undeclared microprotocol '" << h.owner().name() << "'";
      throw IsolationError(os.str());
    }
  }

  void before_execute(const Handler& h) override {
    const auto pv = pv_.at(h.owner().id());
    ctrl_.gates_.gate(h.owner().id()).wait_exact(pv - 1, ctrl_.stats_, h.owner().name().c_str());
  }

  void after_execute(const Handler&) override {}

  void on_complete() override {
    // Step 3: upgrade in admission order is implied — each wait_exact can
    // only be satisfied once every older computation upgraded, so the
    // iteration order over pv_ is irrelevant for correctness.
    for (const auto& [mp, pv] : pv_) {
      auto& gate = ctrl_.gates_.gate(mp);
      gate.wait_exact(pv - 1, ctrl_.stats_);
      gate.set_lv(pv);
    }
  }

 private:
  VCABasicController& ctrl_;
  ComputationId k_;
  std::unordered_map<MicroprotocolId, std::uint64_t> pv_;
};

std::unique_ptr<ComputationCC> VCABasicController::admit(ComputationId k, const Isolation& spec) {
  stats_.admissions.add();
  // Steps 1 and 2 are required to be atomic; the admission mutex makes the
  // multi-microprotocol gv upgrade a single indivisible step.
  std::unordered_map<MicroprotocolId, std::uint64_t> pv;
  {
    std::unique_lock lock(admission_mu_);
    for (MicroprotocolId mp : spec.members()) {
      auto& gate = gates_.gate(mp);
      const auto pv_k = gate.admit(1);
      diag::WaitRegistry::instance().note_admission(&gate, nullptr, pv_k, k.value());
      pv.emplace(mp, pv_k);
    }
  }
  return std::make_unique<VCABasicComputationCC>(*this, k, std::move(pv));
}

}  // namespace samoa
