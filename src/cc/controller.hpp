// Concurrency-controller interface.
//
// One ConcurrencyController instance lives inside each Runtime and
// implements a variant of the paper's `isolated` construct. For every
// spawned computation the controller produces a ComputationCC — the
// per-computation half of the algorithm (private version map pv_k, visit
// budgets, routing-graph status) — while the controller itself owns the
// shared half (per-microprotocol global/local version counters).
//
// Hook order for a computation k:
//   admit(k)                                   (Step 1, atomic)
//   on_start()                                 (once, before the root runs)
//   { on_issue -> before_execute -> handler -> after_execute }*   (Step 2/4)
//   on_root_done()                             (root expression returned)
//   on_complete()                              (Step 3; may block)
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/isolation.hpp"
#include "core/microprotocol.hpp"
#include "util/ids.hpp"
#include "util/stats.hpp"

namespace samoa {

/// Shared gate-wait statistics published by controllers; consumed by the
/// runtime's stats() and by the overhead benchmarks.
struct CCStats {
  Counter admissions;
  Counter gate_waits;        // before_execute calls that actually blocked
  Histogram gate_wait_time;  // duration of blocking waits
};

class ComputationCC {
 public:
  virtual ~ComputationCC() = default;

  /// Called once on the computation's root thread before the root
  /// expression runs. Serial execution blocks here for its turn.
  virtual void on_start() {}

  /// An event targeting handler `h` was issued by handler `caller`
  /// (invalid id for the root expression). Runs synchronously in the
  /// issuing thread — this is where declaration violations surface
  /// (IsolationError), and where VCAroute publishes pending/active status
  /// so that a caller cannot complete before its callee is accounted for
  /// (paper Section 5.3, Rule 2 parenthetical).
  virtual void on_issue(HandlerId caller, const Handler& h) = 0;

  /// Version gate: blocks until the computation holds the current version
  /// of h's microprotocol (Rule 2 of the VCA algorithms).
  virtual void before_execute(const Handler& h) = 0;

  /// Handler execution completed (Rule 4 of VCAbound / VCAroute).
  virtual void after_execute(const Handler& h) = 0;

  /// The root expression returned (VCAroute: the virtual ROOT handler
  /// becomes inactive, possibly releasing entry microprotocols).
  virtual void on_root_done() {}

  /// All threads/tasks of the computation terminated (Step 3). May block
  /// waiting for older computations, per the algorithms' wait conditions.
  virtual void on_complete() = 0;

  /// The computation is about to roll back and restart (TSO wait-die
  /// loss): release everything acquired so far. Never called by the
  /// versioning controllers (computations are never aborted there).
  virtual void on_abort() {}

  /// Whether the controller supports asynchronous triggers (TSO does not:
  /// a restart cannot recall an in-flight sibling task).
  virtual bool allows_async() const { return true; }
};

class ConcurrencyController {
 public:
  virtual ~ConcurrencyController() = default;

  /// Admit a new computation (Step 1). Must be atomic with respect to
  /// other admissions. Throws ConfigError if the declaration kind is
  /// incompatible with this controller.
  virtual std::unique_ptr<ComputationCC> admit(ComputationId k, const Isolation& spec) = 0;

  virtual const char* name() const = 0;

  const CCStats& stats() const { return stats_; }

 protected:
  CCStats stats_;
};

/// Selection of the concurrency-control algorithm for a Runtime.
enum class CCPolicy {
  kSerial,    // Appia-like: one computation at a time, FIFO
  kUnsync,    // Cactus-like: no gating at all (baseline / error demo)
  kVCABasic,  // paper Section 5.1
  kVCABound,  // paper Section 5.2
  kVCARoute,  // paper Section 5.3
  kVCARW,     // read/write access modes (paper Section 7, future work)
  kTSO,       // timestamp ordering with rollback/recovery (paper Section 1,
              // the second algorithm family)
};

const char* to_string(CCPolicy policy);

std::unique_ptr<ConcurrencyController> make_controller(CCPolicy policy);

}  // namespace samoa
