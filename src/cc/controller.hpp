// Concurrency-controller interface.
//
// One ConcurrencyController instance lives inside each Runtime and
// implements a variant of the paper's `isolated` construct. For every
// spawned computation the controller produces a ComputationCC — the
// per-computation half of the algorithm (private version map pv_k, visit
// budgets, routing-graph status) — while the controller itself owns the
// shared half (per-microprotocol global/local version counters).
//
// Hook order for a computation k:
//   admit(k)                                   (Step 1, atomic)
//   on_start()                                 (once, before the root runs)
//   { on_issue -> before_execute -> handler -> after_execute }*   (Step 2/4)
//   on_root_done()                             (root expression returned)
//   on_complete()                              (Step 3; may block)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/isolation.hpp"
#include "core/microprotocol.hpp"
#include "util/ids.hpp"
#include "util/stats.hpp"

namespace samoa {

/// Shared gate-wait statistics published by controllers; consumed by the
/// runtime's stats() and by the overhead benchmarks. All fields are relaxed
/// atomics (Counter / Histogram): with the lock-free admission fast path,
/// concurrent computations mutate these without any shared mutex, so plain
/// integers here would be a data race (and a TSan report).
struct CCStats {
  Counter admissions;
  Counter admissions_batched;  // of which: admitted via admit_batch bursts
  Counter admit_fast;          // single-mp admissions (lock-free ticket)
  Counter admit_slow;          // multi-mp admissions (lock-ordered path)
  Counter gate_waits;          // before_execute calls that actually blocked
  Histogram gate_wait_time;    // duration of blocking waits

  // Executor dispatch layer (DispatchImpl::kExecutor; see core/executor.hpp).
  // Written by the runtime's ExecutorGroup — they live here so the dispatch
  // and admission hot-path counters surface through one stats() surface.
  Counter exec_dispatched;     // tasks run on shard consumers
  Counter exec_batches;        // run-to-completion drain batches
  Counter exec_enqueues;       // submit() calls (ring or overflow)
  Counter exec_overflow;       // of which: ring-full mutex-path enqueues
  Counter exec_handoffs;       // consumer-role parks inside a task's wait
  Counter exec_wakeups;        // idle consumers woken by a producer
  Histogram exec_batch_size;   // tasks per drain batch (value = count)
  Histogram exec_queue_depth;  // shard backlog sampled at batch start
};

class ComputationCC {
 public:
  virtual ~ComputationCC() = default;

  /// Called once on the computation's root thread before the root
  /// expression runs. Serial execution blocks here for its turn.
  virtual void on_start() {}

  /// An event targeting handler `h` was issued by handler `caller`
  /// (invalid id for the root expression). Runs synchronously in the
  /// issuing thread — this is where declaration violations surface
  /// (IsolationError), and where VCAroute publishes pending/active status
  /// so that a caller cannot complete before its callee is accounted for
  /// (paper Section 5.3, Rule 2 parenthetical).
  virtual void on_issue(HandlerId caller, const Handler& h) = 0;

  /// Version gate: blocks until the computation holds the current version
  /// of h's microprotocol (Rule 2 of the VCA algorithms).
  virtual void before_execute(const Handler& h) = 0;

  /// Handler execution completed (Rule 4 of VCAbound / VCAroute).
  virtual void after_execute(const Handler& h) = 0;

  /// The root expression returned (VCAroute: the virtual ROOT handler
  /// becomes inactive, possibly releasing entry microprotocols).
  virtual void on_root_done() {}

  /// All threads/tasks of the computation terminated (Step 3). May block
  /// waiting for older computations, per the algorithms' wait conditions.
  virtual void on_complete() = 0;

  /// The computation is about to roll back and restart (TSO wait-die
  /// loss): release everything acquired so far. Never called by the
  /// versioning controllers (computations are never aborted there).
  virtual void on_abort() {}

  /// Whether the controller supports asynchronous triggers (TSO does not:
  /// a restart cannot recall an in-flight sibling task).
  virtual bool allows_async() const { return true; }
};

/// One element of a batch admission: the computation id plus its (sealed,
/// route-resolved) isolation declaration. The spec pointer must outlive the
/// admit_batch call.
struct AdmitRequest {
  ComputationId k;
  const Isolation* spec = nullptr;
};

class ConcurrencyController {
 public:
  virtual ~ConcurrencyController() = default;

  /// Admit a new computation (Step 1). Must be atomic with respect to
  /// other admissions. Throws ConfigError if the declaration kind is
  /// incompatible with this controller.
  virtual std::unique_ptr<ComputationCC> admit(ComputationId k, const Isolation& spec) = 0;

  /// Admit a burst of computations in one gate transaction (Step 1 applied
  /// to the whole batch). Result i corresponds to request i, and the
  /// versions claimed respect batch order on every shared microprotocol —
  /// the batch is indistinguishable from admitting its members one by one
  /// in order, which is what the linearizability property test pins.
  ///
  /// The default runs the members through admit() sequentially; versioning
  /// controllers override it to claim consecutive version ranges with one
  /// fetch_add per gate.
  virtual std::vector<std::unique_ptr<ComputationCC>> admit_batch(
      const std::vector<AdmitRequest>& reqs) {
    std::vector<std::unique_ptr<ComputationCC>> out;
    out.reserve(reqs.size());
    for (const AdmitRequest& r : reqs) out.push_back(admit(r.k, *r.spec));
    return out;
  }

  virtual const char* name() const = 0;

  const CCStats& stats() const { return stats_; }
  /// Mutable access for runtime-owned collaborators that publish into the
  /// same stats block (the ExecutorGroup's exec_* counters).
  CCStats& stats() { return stats_; }

 protected:
  CCStats stats_;
};

/// Selection of the concurrency-control algorithm for a Runtime.
enum class CCPolicy {
  kSerial,    // Appia-like: one computation at a time, FIFO
  kUnsync,    // Cactus-like: no gating at all (baseline / error demo)
  kVCABasic,  // paper Section 5.1
  kVCABound,  // paper Section 5.2
  kVCARoute,  // paper Section 5.3
  kVCARW,     // read/write access modes (paper Section 7, future work)
  kTSO,       // timestamp ordering with rollback/recovery (paper Section 1,
              // the second algorithm family)
};

const char* to_string(CCPolicy policy);

std::unique_ptr<ConcurrencyController> make_controller(CCPolicy policy);

}  // namespace samoa
