#include "cc/vca_rw.hpp"

#include <sstream>

#include "core/errors.hpp"
#include "diag/wait_registry.hpp"

namespace samoa {

class VCARWComputationCC : public ComputationCC {
 public:
  struct Slot {
    std::uint64_t pv = 0;
    Access access = Access::kWrite;
  };

  VCARWComputationCC(VCARWController& ctrl, ComputationId k,
                     std::unordered_map<MicroprotocolId, Slot> slots)
      : ctrl_(ctrl), k_(k), slots_(std::move(slots)) {}

  void on_issue(HandlerId, const Handler& h) override {
    auto it = slots_.find(h.owner().id());
    if (it == slots_.end()) {
      std::ostringstream os;
      os << "isolated rw: computation " << k_ << " called handler '" << h.name()
         << "' of undeclared microprotocol '" << h.owner().name() << "'";
      throw IsolationError(os.str());
    }
    if (it->second.access == Access::kRead && !h.read_only()) {
      std::ostringstream os;
      os << "isolated rw: computation " << k_ << " declared read-only access to '"
         << h.owner().name() << "' but called read-and-write handler '" << h.name() << "'";
      throw IsolationError(os.str());
    }
  }

  void before_execute(const Handler& h) override {
    const Slot& s = slots_.at(h.owner().id());
    // Readers of one group share pv, so they all pass together; writers
    // hold pv exclusively — plain VCAbasic gating either way.
    ctrl_.gates_.gate(h.owner().id()).wait_exact(s.pv - 1, ctrl_.stats_, h.owner().name().c_str());
  }

  void after_execute(const Handler&) override {}

  void on_complete() override {
    for (const auto& [mp, s] : slots_) {
      auto& gate = ctrl_.gates_.gate(mp);
      if (s.access == Access::kWrite) {
        gate.wait_exact(s.pv - 1, ctrl_.stats_);
        gate.set_lv(s.pv);
        continue;
      }
      // Reader: leave the group; the last member out performs the upgrade.
      // Membership lives on the controller, under the admission mutex.
      bool last_out;
      {
        std::unique_lock lock(ctrl_.admission_mu_);
        auto& rw = ctrl_.rw_[mp];
        auto it = rw.group_members.find(s.pv);
        last_out = --it->second == 0;
        if (last_out) {
          rw.group_members.erase(it);
          if (rw.joinable_version == s.pv) rw.joinable_version = 0;
        }
      }
      if (last_out) {
        gate.wait_exact(s.pv - 1, ctrl_.stats_);
        gate.set_lv(s.pv);
      }
    }
  }

 private:
  VCARWController& ctrl_;
  ComputationId k_;
  std::unordered_map<MicroprotocolId, Slot> slots_;
};

std::unique_ptr<ComputationCC> VCARWController::admit(ComputationId k, const Isolation& spec) {
  if (spec.kind() != Isolation::Kind::ReadWrite) {
    throw ConfigError("VCArw requires Isolation::read_write declarations (got " +
                      spec.describe() + ")");
  }
  stats_.admissions.add();
  std::unordered_map<MicroprotocolId, VCARWComputationCC::Slot> slots;
  {
    std::unique_lock lock(admission_mu_);
    for (MicroprotocolId mp : spec.members()) {
      const Access access = spec.accesses().at(mp);
      auto& gate = gates_.gate(mp);
      auto& rw = rw_[mp];
      VCARWComputationCC::Slot s;
      s.access = access;
      if (access == Access::kWrite) {
        s.pv = gate.admit(1);
        rw.joinable_version = 0;  // later readers must start a new group
      } else if (rw.joinable_version != 0 && gate.lv() < rw.joinable_version) {
        // Join the open reader group: its turn has not passed and no
        // writer was admitted in between.
        s.pv = rw.joinable_version;
        ++rw.group_members[s.pv];
      } else {
        s.pv = gate.admit(1);
        rw.joinable_version = s.pv;
        rw.group_members[s.pv] = 1;
      }
      // Reader groups share a version; the first member stands in as the
      // holder (note_admission keeps the earliest comp per version).
      diag::WaitRegistry::instance().note_admission(&gate, nullptr, s.pv, k.value());
      slots.emplace(mp, s);
    }
  }
  return std::make_unique<VCARWComputationCC>(*this, k, std::move(slots));
}

}  // namespace samoa
