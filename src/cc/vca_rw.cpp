#include "cc/vca_rw.hpp"

#include <sstream>

#include "core/errors.hpp"

namespace samoa {

class VCARWComputationCC : public ComputationCC {
 public:
  struct Slot {
    std::uint64_t pv = 0;
    Access access = Access::kWrite;
  };

  VCARWComputationCC(VCARWController& ctrl, ComputationId k,
                     std::unordered_map<MicroprotocolId, Slot> slots)
      : ctrl_(ctrl), k_(k), slots_(std::move(slots)) {}

  void on_issue(HandlerId, const Handler& h) override {
    auto it = slots_.find(h.owner().id());
    if (it == slots_.end()) {
      std::ostringstream os;
      os << "isolated rw: computation " << k_ << " called handler '" << h.name()
         << "' of undeclared microprotocol '" << h.owner().name() << "'";
      throw IsolationError(os.str());
    }
    if (it->second.access == Access::kRead && !h.read_only()) {
      std::ostringstream os;
      os << "isolated rw: computation " << k_ << " declared read-only access to '"
         << h.owner().name() << "' but called read-and-write handler '" << h.name() << "'";
      throw IsolationError(os.str());
    }
  }

  void before_execute(const Handler& h) override {
    const Slot& s = slots_.at(h.owner().id());
    // Readers of one group share pv, so they all pass together; writers
    // hold pv exclusively — plain VCAbasic gating either way.
    ctrl_.gates_.gate(h.owner().id()).wait_exact(s.pv - 1, ctrl_.stats_, h.owner().name().c_str());
  }

  void after_execute(const Handler&) override {}

  void on_complete() override {
    for (const auto& [mp, s] : slots_) {
      auto& gate = ctrl_.gates_.gate(mp);
      if (s.access == Access::kWrite) {
        gate.wait_exact(s.pv - 1, ctrl_.stats_);
        gate.set_lv(s.pv);
        continue;
      }
      // Reader: leave the group; the last member out performs the upgrade.
      // Membership is guarded by the owning gate's admission mutex — the
      // same lock admissions use to join, so join and last-out race
      // coherently without any controller-wide lock.
      bool last_out;
      {
        std::unique_lock lock(gate.admission_mutex());
        auto& rw = ctrl_.rw_state(mp);
        auto it = rw.group_members.find(s.pv);
        last_out = --it->second == 0;
        if (last_out) {
          rw.group_members.erase(it);
          if (rw.joinable_version == s.pv) rw.joinable_version = 0;
        }
      }
      if (last_out) {
        gate.wait_exact(s.pv - 1, ctrl_.stats_);
        gate.set_lv(s.pv);
      }
    }
  }

 private:
  VCARWController& ctrl_;
  ComputationId k_;
  std::unordered_map<MicroprotocolId, Slot> slots_;
};

VCARWController::RwState& VCARWController::rw_state(MicroprotocolId mp) {
  std::unique_lock lock(rw_map_mu_);
  return rw_[mp];
}

std::unique_ptr<ComputationCC> VCARWController::admit(ComputationId k, const Isolation& spec) {
  if (spec.kind() != Isolation::Kind::ReadWrite) {
    throw ConfigError("VCArw requires Isolation::read_write declarations (got " +
                      spec.describe() + ")");
  }
  stats_.admissions.add();
  std::unordered_map<MicroprotocolId, VCARWComputationCC::Slot> slots;
  // Caller must hold gates_.gate(mp).admission_mutex().
  auto admit_one = [&](MicroprotocolId mp) {
    const Access access = spec.accesses().at(mp);
    auto& gate = gates_.gate(mp);
    auto& rw = rw_state(mp);
    VCARWComputationCC::Slot s;
    s.access = access;
    if (access == Access::kWrite) {
      s.pv = gate.admit(1, k.value());
      rw.joinable_version = 0;  // later readers must start a new group
    } else if (rw.joinable_version != 0 && gate.lv() < rw.joinable_version) {
      // Join the open reader group: its turn has not passed and no
      // writer was admitted in between. The group shares a version; its
      // first member already stands in as the holder.
      s.pv = rw.joinable_version;
      ++rw.group_members[s.pv];
    } else {
      s.pv = gate.admit(1, k.value());
      rw.joinable_version = s.pv;
      rw.group_members[s.pv] = 1;
    }
    slots.emplace(mp, s);
  };
  const auto& members = spec.members();
  if (members.size() == 1) {
    // Sharded fast path: group joining mutates per-mp shared state, so rw
    // takes the single member gate's admission lock — contention stays
    // per-microprotocol instead of controller-wide.
    stats_.admit_fast.add();
    const MicroprotocolId mp = members.front();
    std::unique_lock lock(gates_.gate(mp).admission_mutex());
    admit_one(mp);
  } else {
    stats_.admit_slow.add();
    OrderedAdmission locks(gates_, members);
    for (MicroprotocolId mp : members) admit_one(mp);
  }
  return std::make_unique<VCARWComputationCC>(*this, k, std::move(slots));
}

}  // namespace samoa
