// VCAbasic — the Basic Version-Counting Algorithm (paper Section 5.1).
//
// Step 1  (admit, atomic): for each declared microprotocol p, gv_p += 1;
//         the computation's private version pv[p] is the upgraded gv_p.
// Step 2  (before_execute): a handler of p may run only when
//         pv[p] - 1 == lv_p.
// Step 3  (on_complete): for each p in M, wait until pv[p] - 1 == lv_p,
//         then upgrade lv_p = pv[p].
//
// Deadlock-free: admissions are atomic across all of M, so the version
// order between any two computations is identical on every shared
// microprotocol — the wait-for relation is a total order.
//
// Admission is sharded (no controller-wide mutex): a single-microprotocol
// declaration claims its version with one per-gate fetch_add (atomic by
// construction — there is only one counter involved); a multi-microprotocol
// declaration takes the member gates' admission mutexes in mp-id order
// (OrderedAdmission) so any two admissions sharing gates serialize and
// observe identical version order everywhere. admit_batch() compresses a
// burst of single-mp admissions into one fetch_add per distinct gate.
#pragma once

#include "cc/controller.hpp"
#include "cc/version_gate.hpp"

namespace samoa {

class VCABasicController : public ConcurrencyController {
 public:
  std::unique_ptr<ComputationCC> admit(ComputationId k, const Isolation& spec) override;
  std::vector<std::unique_ptr<ComputationCC>> admit_batch(
      const std::vector<AdmitRequest>& reqs) override;
  const char* name() const override { return "VCAbasic"; }

 private:
  friend class VCABasicComputationCC;

  GateTable gates_;
};

}  // namespace samoa
