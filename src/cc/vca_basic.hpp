// VCAbasic — the Basic Version-Counting Algorithm (paper Section 5.1).
//
// Step 1  (admit, atomic): for each declared microprotocol p, gv_p += 1;
//         the computation's private version pv[p] is the upgraded gv_p.
// Step 2  (before_execute): a handler of p may run only when
//         pv[p] - 1 == lv_p.
// Step 3  (on_complete): for each p in M, wait until pv[p] - 1 == lv_p,
//         then upgrade lv_p = pv[p].
//
// Deadlock-free: admissions are atomic across all of M, so the version
// order between any two computations is identical on every shared
// microprotocol — the wait-for relation is a total order.
#pragma once

#include <mutex>

#include "cc/controller.hpp"
#include "cc/version_gate.hpp"

namespace samoa {

class VCABasicController : public ConcurrencyController {
 public:
  std::unique_ptr<ComputationCC> admit(ComputationId k, const Isolation& spec) override;
  const char* name() const override { return "VCAbasic"; }

 private:
  friend class VCABasicComputationCC;

  std::mutex admission_mu_;
  GateTable gates_;
};

}  // namespace samoa
