// VCArw — version counting with read/write access modes.
//
// Implements the paper's future-work direction (Section 7): "introduce
// different types of handlers (e.g. read-only, read-and-write) and several
// levels of isolation". A computation declares, per microprotocol, whether
// it will only call read-only handlers (Access::kRead) or needs exclusive
// access (Access::kWrite).
//
// Versioning with reader groups:
//  * a Write admission takes a fresh exclusive version pv = ++gv (exactly
//    VCAbasic semantics);
//  * consecutive Read admissions *join a reader group* sharing one version
//    — all of them pass the gate (lv == pv - 1) together and execute
//    concurrently on the microprotocol; the group's version is upgraded
//    when its last member completes.
// A group is joinable while it has live members and its turn has not
// passed; otherwise a fresh group starts. Read/write and write/write
// conflicts remain ordered by version, so the execution stays
// conflict-serializable: only read-read accesses overlap, and those
// commute.
//
// Declaring Access::kRead and then calling a read-and-write handler throws
// IsolationError at issue time (the declaration is the contract, as with
// bounds and routes).
#pragma once

#include <mutex>
#include <unordered_map>

#include "cc/controller.hpp"
#include "cc/version_gate.hpp"

namespace samoa {

class VCARWController : public ConcurrencyController {
 public:
  std::unique_ptr<ComputationCC> admit(ComputationId k, const Isolation& spec) override;
  const char* name() const override { return "VCArw"; }

 private:
  friend class VCARWComputationCC;

  /// Reader-group bookkeeping per microprotocol. The *contents* are
  /// guarded by the owning gate's admission_mutex() — rw admissions are
  /// sharded per microprotocol, not funnelled through one controller lock
  /// (group joining reads and writes this shared state, so unlike the
  /// other VCA variants even the single-mp case takes its per-gate lock).
  struct RwState {
    /// The group currently accepting joiners (0: none — either no reader
    /// group exists or a writer was admitted after it).
    std::uint64_t joinable_version = 0;
    /// Live readers per group version; the last member out upgrades the
    /// gate and erases the entry.
    std::unordered_map<std::uint64_t, std::uint64_t> group_members;
  };

  /// First-touch lookup of a microprotocol's RwState. Only the map
  /// *structure* is guarded by rw_map_mu_ (references are node-stable
  /// across rehash); callers must hold the gate's admission mutex to touch
  /// the returned state.
  RwState& rw_state(MicroprotocolId mp);

  GateTable gates_;
  std::mutex rw_map_mu_;
  std::unordered_map<MicroprotocolId, RwState> rw_;
};

}  // namespace samoa
