#include "cc/routing_graph.hpp"

#include <algorithm>
#include <deque>

#include "core/errors.hpp"

namespace samoa {

void RoutingGraph::add_node(HandlerId h,
                            const std::unordered_map<HandlerId, MicroprotocolId>& owners) {
  if (closure_.contains(h)) return;
  closure_.emplace(h, std::unordered_set<HandlerId>{});
  auto it = owners.find(h);
  if (it == owners.end()) {
    throw ConfigError("RoutingGraph: handler without a resolved owner (route not resolved?)");
  }
  owners_.emplace(h, it->second);
  auto& hs = mp_handlers_[it->second];
  if (hs.empty()) mps_.push_back(it->second);
  hs.push_back(h);
}

RoutingGraph::RoutingGraph(const RouteSpec& spec,
                           const std::unordered_map<HandlerId, MicroprotocolId>& owners) {
  for (HandlerId h : spec.entries) {
    add_node(h, owners);
    entries_.insert(h);
  }
  std::unordered_map<HandlerId, std::vector<HandlerId>> adj;
  for (const auto& [from, to] : spec.edges) {
    add_node(from, owners);
    add_node(to, owners);
    adj[from].push_back(to);
  }
  // Transitive closure by BFS from every node (graphs are tiny).
  for (auto& [node, succ] : closure_) {
    std::deque<HandlerId> queue(adj[node].begin(), adj[node].end());
    while (!queue.empty()) {
      const HandlerId cur = queue.front();
      queue.pop_front();
      if (!succ.insert(cur).second) continue;
      const auto it = adj.find(cur);
      if (it == adj.end()) continue;
      for (HandlerId next : it->second) queue.push_back(next);
    }
  }
}

bool RoutingGraph::has_path(HandlerId from, HandlerId to) const {
  auto it = closure_.find(from);
  return it != closure_.end() && it->second.contains(to);
}

std::unordered_set<HandlerId> RoutingGraph::reachable_from(
    const std::vector<HandlerId>& sources) const {
  std::unordered_set<HandlerId> out;
  for (HandlerId s : sources) {
    out.insert(s);
    auto it = closure_.find(s);
    if (it == closure_.end()) continue;
    out.insert(it->second.begin(), it->second.end());
  }
  return out;
}

std::unordered_set<HandlerId> RoutingGraph::reachable_from_root() const {
  std::vector<HandlerId> entries(entries_.begin(), entries_.end());
  return reachable_from(entries);
}

}  // namespace samoa
