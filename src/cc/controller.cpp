#include "cc/controller.hpp"

#include "cc/serial.hpp"
#include "cc/unsync.hpp"
#include "cc/vca_basic.hpp"
#include "cc/vca_bound.hpp"
#include "cc/vca_route.hpp"
#include "cc/tso.hpp"
#include "cc/vca_rw.hpp"
#include "core/errors.hpp"

namespace samoa {

const char* to_string(CCPolicy policy) {
  switch (policy) {
    case CCPolicy::kSerial:
      return "serial";
    case CCPolicy::kUnsync:
      return "unsync";
    case CCPolicy::kVCABasic:
      return "VCAbasic";
    case CCPolicy::kVCABound:
      return "VCAbound";
    case CCPolicy::kVCARoute:
      return "VCAroute";
    case CCPolicy::kVCARW:
      return "VCArw";
    case CCPolicy::kTSO:
      return "TSO";
  }
  return "?";
}

std::unique_ptr<ConcurrencyController> make_controller(CCPolicy policy) {
  switch (policy) {
    case CCPolicy::kSerial:
      return std::make_unique<SerialController>();
    case CCPolicy::kUnsync:
      return std::make_unique<UnsyncController>();
    case CCPolicy::kVCABasic:
      return std::make_unique<VCABasicController>();
    case CCPolicy::kVCABound:
      return std::make_unique<VCABoundController>();
    case CCPolicy::kVCARoute:
      return std::make_unique<VCARouteController>();
    case CCPolicy::kVCARW:
      return std::make_unique<VCARWController>();
    case CCPolicy::kTSO:
      return std::make_unique<TSOController>();
  }
  throw ConfigError("unknown CCPolicy");
}

}  // namespace samoa
