#include "cc/vca_route.hpp"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "cc/routing_graph.hpp"
#include "core/errors.hpp"

namespace samoa {

class VCARouteComputationCC : public ComputationCC {
 public:
  VCARouteComputationCC(VCARouteController& ctrl, ComputationId k, RoutingGraph graph,
                        std::unordered_map<MicroprotocolId, std::uint64_t> pv)
      : ctrl_(ctrl), k_(k), graph_(std::move(graph)), pv_(std::move(pv)) {}

  void on_issue(HandlerId caller, const Handler& h) override {
    std::unique_lock lock(mu_);
    if (!graph_.has_node(h.id())) {
      std::ostringstream os;
      os << "isolated route: computation " << k_ << " called handler '" << h.name()
         << "' absent from the declared routing pattern";
      throw IsolationError(os.str());
    }
    if (!caller.valid()) {
      if (!graph_.is_entry(h.id())) {
        std::ostringstream os;
        os << "isolated route: handler '" << h.name()
           << "' is not declared callable from the root expression";
        throw IsolationError(os.str());
      }
    } else if (!graph_.has_path(caller, h.id())) {
      std::ostringstream os;
      os << "isolated route: no route to handler '" << h.name()
         << "' from its caller in the declared pattern";
      throw IsolationError(os.str());
    }
    if (released_.contains(h.owner().id())) {
      // Defensive: reachable callees can never belong to a released
      // microprotocol; hitting this means the declared pattern disagreed
      // with the actual call structure (e.g. a cycle re-entered late).
      std::ostringstream os;
      os << "isolated route: microprotocol '" << h.owner().name()
         << "' was already released by routing analysis";
      throw IsolationError(os.str());
    }
    ++pending_[h.id()];  // active-at-issue: see header comment
  }

  void before_execute(const Handler& h) override {
    const auto pv = pv_.at(h.owner().id());
    ctrl_.gates_.gate(h.owner().id()).wait_exact(pv - 1, ctrl_.stats_, h.owner().name().c_str());
  }

  void after_execute(const Handler& h) override {
    std::unique_lock lock(mu_);
    auto it = pending_.find(h.id());
    if (it != pending_.end() && it->second > 0) --it->second;  // Rule 4(a)
    scan_releases_locked();                                    // Rule 4(b)
  }

  void on_root_done() override {
    std::unique_lock lock(mu_);
    root_active_ = false;
    scan_releases_locked();
  }

  void on_complete() override {
    // The final scan (all handlers inactive, ROOT done) released every
    // microprotocol via deferred upgrades, so Step 3 reduces to Rule 3 of
    // VCAbound for anything a cycle or race left over — normally nothing.
    std::vector<MicroprotocolId> leftovers;
    {
      std::unique_lock lock(mu_);
      for (const auto& [mp, pv] : pv_) {
        (void)pv;
        if (!released_.contains(mp)) leftovers.push_back(mp);
      }
    }
    for (MicroprotocolId mp : leftovers) {
      auto& gate = ctrl_.gates_.gate(mp);
      const auto pv = pv_.at(mp);
      gate.wait_exact(pv - 1, ctrl_.stats_);
      gate.set_lv(pv);
    }
  }

 private:
  // Rule 4(b): release every microprotocol whose handlers are all inactive
  // and unreachable from any active handler (ROOT counts as active until
  // the root expression returned). Caller holds mu_.
  void scan_releases_locked() {
    std::vector<HandlerId> active;
    for (const auto& [h, count] : pending_) {
      if (count > 0) active.push_back(h);
    }
    auto reachable = graph_.reachable_from(active);
    if (root_active_) {
      auto from_root = graph_.reachable_from_root();
      reachable.insert(from_root.begin(), from_root.end());
    }
    for (MicroprotocolId mp : graph_.microprotocols()) {
      if (released_.contains(mp)) continue;
      bool releasable = true;
      for (HandlerId h : graph_.handlers_of(mp)) {
        auto it = pending_.find(h);
        const bool is_active = it != pending_.end() && it->second > 0;
        if (is_active || reachable.contains(h)) {
          releasable = false;
          break;
        }
      }
      if (releasable) {
        released_.insert(mp);
        const auto pv = pv_.at(mp);
        ctrl_.gates_.gate(mp).schedule_set(pv - 1, pv);
      }
    }
  }

  VCARouteController& ctrl_;
  ComputationId k_;
  RoutingGraph graph_;
  std::unordered_map<MicroprotocolId, std::uint64_t> pv_;

  std::mutex mu_;
  std::unordered_map<HandlerId, std::uint64_t> pending_;  // issued-but-uncompleted calls
  std::unordered_set<MicroprotocolId> released_;
  bool root_active_ = true;
};

std::unique_ptr<ComputationCC> VCARouteController::admit(ComputationId k, const Isolation& spec) {
  if (spec.kind() != Isolation::Kind::Route) {
    throw ConfigError("VCAroute requires Isolation::route declarations (got " + spec.describe() +
                      ")");
  }
  stats_.admissions.add();
  RoutingGraph graph(spec.route_spec(), spec.route_owners());
  std::unordered_map<MicroprotocolId, std::uint64_t> pv;
  const auto& members = spec.members();
  if (members.size() == 1) {
    // Single microprotocol: one lock-free fetch_add claims the version.
    stats_.admit_fast.add();
    const MicroprotocolId mp = members.front();
    pv.emplace(mp, gates_.gate(mp).admit(1, k.value()));
  } else {
    // Lock-ordered multi-mp path; see VCABasicController::admit.
    stats_.admit_slow.add();
    OrderedAdmission locks(gates_, members);
    for (MicroprotocolId mp : members) {
      pv.emplace(mp, gates_.gate(mp).admit(1, k.value()));
    }
  }
  return std::make_unique<VCARouteComputationCC>(*this, k, std::move(graph), std::move(pv));
}

}  // namespace samoa
