#include "cc/version_gate.hpp"

#include <stdexcept>

#include "diag/wait_registry.hpp"

namespace samoa {

VersionGate::~VersionGate() { diag::WaitRegistry::instance().forget_subject(this); }

std::uint64_t VersionGate::admit(std::uint64_t delta) {
  std::unique_lock lock(mu_);
  gv_ += delta;
  return gv_;
}

void VersionGate::wait_exact(std::uint64_t pv_minus_1, CCStats& stats, const char* who) {
  std::unique_lock lock(mu_);
  if (lv_ == pv_minus_1) return;
  stats.gate_waits.add();
  const auto start = Clock::now();
  Waiter self;
  self.lo = pv_minus_1;
  self.hi = pv_minus_1 + 1;
  self.comp = diag::current_computation();
  exact_waiters_.emplace(pv_minus_1, &self);
  {
    // Registering the wait also releases this worker's runnable slot in
    // its pool (see ElasticThreadPool::note_worker_parked) — the task
    // that publishes pv_minus_1 may still be queued.
    diag::ScopedWait wait(diag::WaitKind::kGateExact, this, who, pv_minus_1, pv_minus_1 + 1, lv_);
    self.cv.wait(lock, [&] { return lv_ == pv_minus_1; });
  }
  // Re-find rather than cache the emplace iterator: concurrent inserts may
  // have rehashed the table while this thread was parked.
  const auto [begin, end] = exact_waiters_.equal_range(pv_minus_1);
  for (auto it = begin; it != end; ++it) {
    if (it->second == &self) {
      exact_waiters_.erase(it);
      break;
    }
  }
  stats.gate_wait_time.record(std::chrono::duration_cast<Nanos>(Clock::now() - start));
}

void VersionGate::wait_window(std::uint64_t lo, std::uint64_t hi, CCStats& stats, const char* who) {
  std::unique_lock lock(mu_);
  auto in_window = [&] { return lo <= lv_ && lv_ < hi; };
  if (in_window()) return;
  stats.gate_waits.add();
  const auto start = Clock::now();
  Waiter self;
  self.lo = lo;
  self.hi = hi;
  self.comp = diag::current_computation();
  window_waiters_.push_back(&self);
  {
    diag::ScopedWait wait(diag::WaitKind::kGateWindow, this, who, lo, hi, lv_);
    self.cv.wait(lock, in_window);
  }
  std::erase(window_waiters_, &self);
  stats.gate_wait_time.record(std::chrono::duration_cast<Nanos>(Clock::now() - start));
}

void VersionGate::set_lv(std::uint64_t v) {
  std::unique_lock lock(mu_);
  if (v < lv_) throw std::logic_error("VersionGate: local version downgrade");
  lv_ = v;
  wake_matching_locked();
  apply_deferred_locked();
  diag::WaitRegistry::instance().note_release(this, lv_);
  diag::WaitRegistry::instance().note_progress();
}

void VersionGate::increment_lv() {
  std::unique_lock lock(mu_);
  ++lv_;
  wake_matching_locked();
  apply_deferred_locked();
  diag::WaitRegistry::instance().note_release(this, lv_);
  diag::WaitRegistry::instance().note_progress();
}

void VersionGate::schedule_set(std::uint64_t trigger, std::uint64_t to) {
  std::unique_lock lock(mu_);
  if (lv_ == trigger) {
    lv_ = to;
    wake_matching_locked();
    apply_deferred_locked();
    diag::WaitRegistry::instance().note_release(this, lv_);
    diag::WaitRegistry::instance().note_progress();
    return;
  }
  if (lv_ > trigger) {
    // The turn already passed (possible only if the caller raced a direct
    // upgrade); the scheduled value must then be stale or equal.
    return;
  }
  deferred_.emplace(trigger, to);
}

void VersionGate::apply_deferred_locked() {
  auto it = deferred_.find(lv_);
  while (it != deferred_.end()) {
    lv_ = it->second;
    deferred_.erase(it);
    // Each intermediate value a deferred chain lands on is a published
    // version in its own right: waiters keyed on it must see it.
    wake_matching_locked();
    it = deferred_.find(lv_);
  }
}

void VersionGate::wake_matching_locked() {
  const auto [begin, end] = exact_waiters_.equal_range(lv_);
  for (auto it = begin; it != end; ++it) {
    Waiter* w = it->second;
    w->cv.notify_one();
    ++wakeups_delivered_;
    if (!w->counted) {
      w->counted = true;
      diag::WaitRegistry::instance().note_wakeup_delivered(w->comp);
    }
  }
  for (Waiter* w : window_waiters_) {
    if (w->lo <= lv_ && lv_ < w->hi) {
      w->cv.notify_one();
      ++wakeups_delivered_;
      if (!w->counted) {
        w->counted = true;
        diag::WaitRegistry::instance().note_wakeup_delivered(w->comp);
      }
    }
  }
}

std::uint64_t VersionGate::wakeups_delivered() const {
  std::unique_lock lock(mu_);
  return wakeups_delivered_;
}

std::uint64_t VersionGate::lv() const {
  std::unique_lock lock(mu_);
  return lv_;
}

VersionGate& GateTable::gate(MicroprotocolId mp) {
  std::unique_lock lock(mu_);
  auto& slot = gates_[mp];
  if (!slot) slot = std::make_unique<VersionGate>();
  return *slot;
}

}  // namespace samoa
