#include "cc/version_gate.hpp"

#include <stdexcept>

namespace samoa {

std::uint64_t VersionGate::admit(std::uint64_t delta) {
  std::unique_lock lock(mu_);
  gv_ += delta;
  return gv_;
}

void VersionGate::wait_exact(std::uint64_t pv_minus_1, CCStats& stats) {
  std::unique_lock lock(mu_);
  if (lv_ == pv_minus_1) return;
  stats.gate_waits.add();
  const auto start = Clock::now();
  cv_.wait(lock, [&] { return lv_ == pv_minus_1; });
  stats.gate_wait_time.record(std::chrono::duration_cast<Nanos>(Clock::now() - start));
}

void VersionGate::wait_window(std::uint64_t lo, std::uint64_t hi, CCStats& stats) {
  std::unique_lock lock(mu_);
  auto in_window = [&] { return lo <= lv_ && lv_ < hi; };
  if (in_window()) return;
  stats.gate_waits.add();
  const auto start = Clock::now();
  cv_.wait(lock, in_window);
  stats.gate_wait_time.record(std::chrono::duration_cast<Nanos>(Clock::now() - start));
}

void VersionGate::set_lv(std::uint64_t v) {
  std::unique_lock lock(mu_);
  if (v < lv_) throw std::logic_error("VersionGate: local version downgrade");
  lv_ = v;
  apply_deferred_locked();
  cv_.notify_all();
}

void VersionGate::increment_lv() {
  std::unique_lock lock(mu_);
  ++lv_;
  apply_deferred_locked();
  cv_.notify_all();
}

void VersionGate::schedule_set(std::uint64_t trigger, std::uint64_t to) {
  std::unique_lock lock(mu_);
  if (lv_ == trigger) {
    lv_ = to;
    apply_deferred_locked();
    cv_.notify_all();
    return;
  }
  if (lv_ > trigger) {
    // The turn already passed (possible only if the caller raced a direct
    // upgrade); the scheduled value must then be stale or equal.
    return;
  }
  deferred_.emplace(trigger, to);
}

void VersionGate::apply_deferred_locked() {
  auto it = deferred_.find(lv_);
  while (it != deferred_.end()) {
    lv_ = it->second;
    deferred_.erase(it);
    it = deferred_.find(lv_);
  }
}

std::uint64_t VersionGate::lv() const {
  std::unique_lock lock(mu_);
  return lv_;
}

VersionGate& GateTable::gate(MicroprotocolId mp) {
  std::unique_lock lock(mu_);
  auto& slot = gates_[mp];
  if (!slot) slot = std::make_unique<VersionGate>();
  return *slot;
}

}  // namespace samoa
