#include "cc/version_gate.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace samoa {

VersionGate::VersionGate() {
  // Self-tracking subject: blocked-state dumps pull holders from the ring
  // via the HolderSource interface instead of the registry's own maps, so
  // admissions never take the registry's global mutex.
  diag::WaitRegistry::instance().attach_source(this, this);
}

VersionGate::~VersionGate() { diag::WaitRegistry::instance().forget_subject(this); }

std::uint64_t VersionGate::admit(std::uint64_t delta, std::uint64_t comp) {
  const std::uint64_t pv = cell_.gv.fetch_add(delta, std::memory_order_acq_rel) + delta;
  if (comp != 0) note_holder(pv, comp);
  return pv;
}

std::uint64_t VersionGate::claim_range(std::uint64_t total) {
  return cell_.gv.fetch_add(total, std::memory_order_acq_rel) + total;
}

void VersionGate::note_holder(std::uint64_t pv, std::uint64_t comp) {
  // Best-effort diagnostic record: a backlog deeper than the ring reuses
  // slots, and a dump racing the pair of stores may see a torn entry. Both
  // only blur a thread dump; the version counters themselves are exact.
  HolderSlot& slot = holders_[pv % kHolderRing];
  slot.comp.store(comp, std::memory_order_relaxed);
  slot.version.store(pv, std::memory_order_release);
}

void VersionGate::wait_exact(std::uint64_t pv_minus_1, CCStats& stats, const char* who) {
  const std::uint64_t target = pv_minus_1;
  if (cell_.lv.load(std::memory_order_acquire) == target) return;  // lock-free fast path
  std::unique_lock lock(mu_);
  // Dekker handshake with lock-free publishers: advertise the sleeper
  // first (seq_cst), then re-check lv (seq_cst). A publisher stores lv
  // before loading sleepers, so one of us is guaranteed to see the other.
  cell_.sleepers.fetch_add(1, std::memory_order_seq_cst);
  if (cell_.lv.load(std::memory_order_seq_cst) == target) {
    cell_.sleepers.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  stats.gate_waits.add();
  const auto start = Clock::now();
  Waiter self;
  self.lo = target;
  self.hi = target + 1;
  self.comp = diag::current_computation();
  exact_waiters_.emplace(target, &self);
  {
    // Registering the wait also releases this worker's runnable slot in
    // its pool (see ElasticThreadPool::note_worker_parked) — the task
    // that publishes pv_minus_1 may still be queued.
    diag::ScopedWait wait(diag::WaitKind::kGateExact, this, who, target, target + 1,
                          cell_.lv.load(std::memory_order_relaxed));
    self.cv.wait(lock, [&] {
      return self.cancelled || cell_.lv.load(std::memory_order_relaxed) == target;
    });
  }
  if (!self.cancelled) {
    // Re-find rather than cache the emplace iterator: concurrent inserts
    // may have rehashed the table while this thread was parked. A
    // cancelled waiter was already unhooked by cancel_waiters().
    const auto [begin, end] = exact_waiters_.equal_range(target);
    for (auto it = begin; it != end; ++it) {
      if (it->second == &self) {
        exact_waiters_.erase(it);
        break;
      }
    }
  }
  cell_.sleepers.fetch_sub(1, std::memory_order_relaxed);
  stats.gate_wait_time.record(std::chrono::duration_cast<Nanos>(Clock::now() - start));
  if (self.cancelled) {
    throw WaitCancelled("VersionGate: wait_exact cancelled (computation aborted while parked)");
  }
}

void VersionGate::wait_window(std::uint64_t lo, std::uint64_t hi, CCStats& stats, const char* who) {
  auto in_window = [&](std::uint64_t v) { return lo <= v && v < hi; };
  if (in_window(cell_.lv.load(std::memory_order_acquire))) return;  // lock-free fast path
  std::unique_lock lock(mu_);
  cell_.sleepers.fetch_add(1, std::memory_order_seq_cst);
  if (in_window(cell_.lv.load(std::memory_order_seq_cst))) {
    cell_.sleepers.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  stats.gate_waits.add();
  const auto start = Clock::now();
  Waiter self;
  self.lo = lo;
  self.hi = hi;
  self.comp = diag::current_computation();
  window_waiters_.push_back(&self);
  {
    diag::ScopedWait wait(diag::WaitKind::kGateWindow, this, who, lo, hi,
                          cell_.lv.load(std::memory_order_relaxed));
    self.cv.wait(lock, [&] {
      return self.cancelled || in_window(cell_.lv.load(std::memory_order_relaxed));
    });
  }
  if (!self.cancelled) std::erase(window_waiters_, &self);
  cell_.sleepers.fetch_sub(1, std::memory_order_relaxed);
  stats.gate_wait_time.record(std::chrono::duration_cast<Nanos>(Clock::now() - start));
  if (self.cancelled) {
    throw WaitCancelled("VersionGate: wait_window cancelled (computation aborted while parked)");
  }
}

void VersionGate::set_lv(std::uint64_t v) {
  std::uint64_t cur = cell_.lv.load(std::memory_order_seq_cst);
  for (;;) {
    if (v < cur) throw std::logic_error("VersionGate: local version downgrade");
    if (v == cur) break;  // already published (e.g. by a deferred chain)
    // CAS-max rather than a plain store: concurrent increment_lv (VCAbound
    // Rule 4 on a different computation's window) must never be lost.
    if (cell_.lv.compare_exchange_weak(cur, v, std::memory_order_seq_cst)) break;
  }
  after_publish();
}

void VersionGate::increment_lv() {
  cell_.lv.fetch_add(1, std::memory_order_seq_cst);
  after_publish();
}

void VersionGate::schedule_set(std::uint64_t trigger, std::uint64_t to) {
  std::unique_lock lock(mu_);
  const std::uint64_t cur = cell_.lv.load(std::memory_order_seq_cst);
  if (cur > trigger) {
    // The turn already passed (possible only if the caller raced a direct
    // upgrade); the scheduled value must then be stale or equal.
    return;
  }
  if (cur == trigger) {
    raise_lv_locked(to);
    apply_deferred_locked();
    diag::WaitRegistry::instance().note_progress();
    return;
  }
  const auto [it, inserted] = deferred_.emplace(trigger, to);
  if (!inserted) {
    it->second = std::max(it->second, to);
  } else {
    cell_.deferred_n.fetch_add(1, std::memory_order_seq_cst);
  }
  // Dekker re-check: a lock-free publisher may have stepped lv to (or
  // across) the trigger after our load above but before it could see
  // deferred_n — it then skipped the slow path, so firing is on us.
  if (cell_.lv.load(std::memory_order_seq_cst) >= trigger) {
    apply_deferred_locked();
    diag::WaitRegistry::instance().note_progress();
  }
}

void VersionGate::after_publish() {
  // The lv update above and these loads are all seq_cst: in the single
  // total order either we see the registering waiter / scheduled deferred
  // upgrade here, or its own re-check sees our lv — never neither.
  if (cell_.sleepers.load(std::memory_order_seq_cst) == 0 &&
      cell_.deferred_n.load(std::memory_order_seq_cst) == 0) {
    fast_publishes_.fetch_add(1, std::memory_order_relaxed);
    diag::WaitRegistry::instance().note_progress();
    return;
  }
  slow_publishes_.fetch_add(1, std::memory_order_relaxed);
  {
    std::unique_lock lock(mu_);
    wake_matching_locked();
    apply_deferred_locked();
  }
  diag::WaitRegistry::instance().note_progress();
}

void VersionGate::raise_lv_locked(std::uint64_t to) {
  std::uint64_t cur = cell_.lv.load(std::memory_order_seq_cst);
  while (cur < to) {
    if (cell_.lv.compare_exchange_weak(cur, to, std::memory_order_seq_cst)) break;
  }
  wake_matching_locked();
}

void VersionGate::apply_deferred_locked() {
  // Fire every trigger at or below lv, in ascending order: lock-free
  // publishers may have stepped lv across several trigger values since the
  // last slow-path entry, and each fired upgrade can land on (or beyond)
  // the next trigger.
  for (;;) {
    const std::uint64_t cur = cell_.lv.load(std::memory_order_seq_cst);
    const auto it = deferred_.begin();
    if (it == deferred_.end() || it->first > cur) break;
    const std::uint64_t to = it->second;
    deferred_.erase(it);
    cell_.deferred_n.fetch_sub(1, std::memory_order_seq_cst);
    // Each value a deferred chain lands on is a published version in its
    // own right: waiters keyed on it must see it (raise_lv_locked wakes).
    if (to > cur) raise_lv_locked(to);
  }
}

void VersionGate::wake_matching_locked() {
  const std::uint64_t cur = cell_.lv.load(std::memory_order_relaxed);
  auto deliver = [&](Waiter* w) {
    w->cv.notify_one();
    // One delivery per park, no matter how many intermediate lv values of
    // a deferred chain also matched: wakeups_delivered() bounds the cost
    // of the publish path by the number of parks, and the explorer's
    // accounting requires at most one report per parked computation.
    if (!w->counted) {
      w->counted = true;
      ++wakeups_delivered_;
      diag::WaitRegistry::instance().note_wakeup_delivered(w->comp);
    }
  };
  const auto [begin, end] = exact_waiters_.equal_range(cur);
  for (auto it = begin; it != end; ++it) deliver(it->second);
  for (Waiter* w : window_waiters_) {
    if (w->lo <= cur && cur < w->hi) deliver(w);
  }
}

std::size_t VersionGate::cancel_waiters(std::uint64_t comp) {
  std::unique_lock lock(mu_);
  std::size_t n = 0;
  for (auto it = exact_waiters_.begin(); it != exact_waiters_.end();) {
    Waiter* w = it->second;
    if (w->comp == comp) {
      w->cancelled = true;
      w->cv.notify_one();
      it = exact_waiters_.erase(it);
      ++n;
    } else {
      ++it;
    }
  }
  for (auto it = window_waiters_.begin(); it != window_waiters_.end();) {
    Waiter* w = *it;
    if (w->comp == comp) {
      w->cancelled = true;
      w->cv.notify_one();
      it = window_waiters_.erase(it);
      ++n;
    } else {
      ++it;
    }
  }
  return n;
}

std::uint64_t VersionGate::wakeups_delivered() const {
  std::unique_lock lock(mu_);
  return wakeups_delivered_;
}

std::vector<diag::HolderEntry> VersionGate::outstanding_holders() const {
  std::vector<diag::HolderEntry> out;
  const std::uint64_t published = lv();
  for (std::size_t i = 0; i < kHolderRing; ++i) {
    const std::uint64_t v = holders_[i].version.load(std::memory_order_acquire);
    if (v == 0 || v <= published) continue;
    out.push_back({v, holders_[i].comp.load(std::memory_order_relaxed)});
  }
  // snapshot() binary-searches holders by version; keep them sorted.
  std::sort(out.begin(), out.end(),
            [](const diag::HolderEntry& a, const diag::HolderEntry& b) {
              return a.version < b.version;
            });
  return out;
}

GateTable::GateTable() = default;
GateTable::~GateTable() = default;

VersionGate& GateTable::gate_slow(MicroprotocolId mp) {
  const std::uint32_t key = mp.value();
  std::unique_lock lock(mu_);
  if (key != kEmptyKey) {
    // Re-probe under the lock: another thread may have inserted while we
    // raced here.
    std::size_t i = probe_start(key);
    for (std::size_t n = 0; n < kSlots; ++n, i = (i + 1) & (kSlots - 1)) {
      const std::uint32_t k = slots_[i].key.load(std::memory_order_relaxed);
      if (k == key) return *slots_[i].gate.load(std::memory_order_relaxed);
      if (k == kEmptyKey) {
        // Cap the load factor so lock-free probe chains stay short; the
        // overflow map keeps correctness beyond it.
        if (used_ >= kSlots / 2) break;
        auto gate = std::make_unique<VersionGate>();
        VersionGate* ptr = gate.get();
        owned_.push_back(std::move(gate));
        ++used_;
        // Publish the gate pointer before the key: a lock-free reader that
        // acquires the key is guaranteed to see the pointer (and the fully
        // constructed gate behind it).
        slots_[i].gate.store(ptr, std::memory_order_relaxed);
        slots_[i].key.store(key, std::memory_order_release);
        return *ptr;
      }
    }
  }
  auto& slot = overflow_[mp];
  if (!slot) slot = std::make_unique<VersionGate>();
  return *slot;
}

OrderedAdmission::OrderedAdmission(GateTable& gates, const std::vector<MicroprotocolId>& mps) {
  std::vector<std::pair<std::uint32_t, VersionGate*>> members;
  members.reserve(mps.size());
  for (MicroprotocolId mp : mps) members.emplace_back(mp.value(), &gates.gate(mp));
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  locked_.reserve(members.size());
  for (auto& [id, g] : members) {
    g->admission_mutex().lock();
    locked_.push_back(g);
  }
}

OrderedAdmission::~OrderedAdmission() {
  for (auto it = locked_.rbegin(); it != locked_.rend(); ++it) (*it)->admission_mutex().unlock();
}

}  // namespace samoa
