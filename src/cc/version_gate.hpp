// Version gates — the shared half of the versioning algorithms.
//
// Each microprotocol p has one gate holding the pair of counters from the
// paper: the global version gv_p (bumped at admission, Step 1) and the
// local version lv_p (the version currently allowed to run, upgraded at
// completion, Step 3, or incrementally by VCAbound's Rule 4 / VCAroute's
// Rule 4(b)).
//
// The counters live in a cache-line-padded VersionCell and are plain
// atomics, so the no-conflict hot path takes no locks:
//
//   * admit (Step 1) is one fetch_add on gv — the per-microprotocol ticket
//     that makes single-microprotocol admissions atomic by construction;
//   * before_execute's gate check is one acquire load of lv;
//   * a publish (Step 3 / Rule 4) is a seqlock-style release of lv — an
//     atomic store/CAS followed by a sleeper check — that only falls back
//     to the gate mutex when a waiter is parked or a deferred upgrade is
//     scheduled.
//
// The mutex now guards only the slow half: the waiter lists and the
// deferred-upgrade map. The lost-wakeup hazard of the split (a waiter
// registering while a lock-free publisher races past) is closed with a
// Dekker-style handshake on seq_cst atomics: a waiter bumps `sleepers_`
// *before* re-checking lv, a publisher stores lv *before* loading
// `sleepers_`; in the single total order of seq_cst operations at least
// one side observes the other, so either the waiter sees the new lv and
// never parks, or the publisher sees the sleeper and takes the wake path.
// The same handshake covers `deferred_n_` so a lock-free publish can never
// step over a just-scheduled Rule 4(b) trigger.
//
// `schedule_set` implements VCAroute's early release correctly: Rule 4(b)
// says "upgrade lv_p = pv[p]_k", but doing so before lv_p has reached
// pv[p]_k - 1 would skip over older computations' turns and break the
// version order the correctness proofs rely on. The deferred upgrade fires
// the moment lv_p reaches (or, with lock-free publishers stepping several
// versions, crosses) the scheduled trigger value.
//
// Wakeups are targeted, not broadcast. Every waiter parks on its own
// condition variable, registered under the version it awaits; a publish
// notifies only the waiter(s) whose window the new lv satisfies. With a
// shared cv + notify_all, each publish woke every parked computation so
// one could proceed — O(waiters) wakeups and gate-mutex reacquisitions
// per version. Under a backlog (the E2 join-flood convoy) that makes the
// cost of a publish grow with the backlog itself, and once publish cost
// times backlog outpaces admission inflow the gate livelocks: the process
// looks deadlocked while one thread broadcasts to thousands of waiters
// that cannot proceed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cc/controller.hpp"
#include "core/errors.hpp"
#include "diag/wait_registry.hpp"
#include "util/ids.hpp"

namespace samoa {

/// Thrown out of wait_exact/wait_window when the parked waiter was revoked
/// by cancel_waiters() (computation aborted — e.g. by a chaos fault plan —
/// while parked). The computation must unwind without touching the gated
/// microprotocol: its version slot is still owned by whoever cleans up the
/// aborted computation.
class WaitCancelled : public SamoaError {
 public:
  explicit WaitCancelled(const std::string& what) : SamoaError(what) {}
};

class VersionGate : public diag::HolderSource {
 public:
  VersionGate();
  ~VersionGate() override;

  /// Step 1: gv += delta; returns the upgraded gv (the computation's
  /// private version pv for this microprotocol). One fetch_add — callers
  /// need no lock for a single-microprotocol admission; multi-microprotocol
  /// admissions hold the admission_mutex() of every member gate in mp-id
  /// order (see OrderedAdmission) so the version order between any two
  /// computations is identical on every shared microprotocol. `comp` is
  /// recorded (lock-free) as the holder that will publish `pv`, for
  /// blocked-state dumps.
  std::uint64_t admit(std::uint64_t delta, std::uint64_t comp = 0);

  /// Batch half of Step 1: reserve `total` versions in one fetch_add and
  /// return the top of the claimed range (= the new gv). The caller hands
  /// out sub-ranges in batch order and reports each computation's pv via
  /// note_holder().
  std::uint64_t claim_range(std::uint64_t total);

  /// Record that `comp` owns (will publish) version `pv` — the lock-free
  /// holder note behind blocked-state dumps. admit() calls this itself;
  /// batch admission calls it per assigned sub-range.
  void note_holder(std::uint64_t pv, std::uint64_t comp);

  /// Rule 2 of VCAbasic/VCAroute: block until lv == pv - 1. `who` names
  /// the gated microprotocol in blocked-state dumps. Lock-free when the
  /// version is already current. Throws WaitCancelled if the park was
  /// revoked by cancel_waiters().
  void wait_exact(std::uint64_t pv_minus_1, CCStats& stats, const char* who = "");

  /// Rule 2 of VCAbound: block until lo <= lv < hi.
  void wait_window(std::uint64_t lo, std::uint64_t hi, CCStats& stats, const char* who = "");

  /// Step 3: lv = v (monotone; asserts no downgrade), then fire deferred
  /// upgrades and wake waiters. Lock-free when nobody is parked and no
  /// deferred upgrade is scheduled.
  void set_lv(std::uint64_t v);

  /// VCAbound Rule 4: ++lv.
  void increment_lv();

  /// VCAroute Rule 4(b): when lv reaches (or crosses) `trigger`, set
  /// lv = max(lv, `to`). Applied immediately if lv >= trigger already.
  void schedule_set(std::uint64_t trigger, std::uint64_t to);

  std::uint64_t lv() const { return cell_.lv.load(std::memory_order_acquire); }
  std::uint64_t gv() const { return cell_.gv.load(std::memory_order_acquire); }

  /// Revoke every parked wait belonging to computation `comp`: the waiter
  /// is unhooked from the gate immediately (so later publishes can never
  /// touch, wake or count a stale entry) and unwinds with WaitCancelled.
  /// Returns the number of waits revoked. Cancel notifications are not
  /// wakeup deliveries: they do not count into wakeups_delivered() and are
  /// not reported to the schedule explorer's accounting.
  std::size_t cancel_waiters(std::uint64_t comp);

  /// Number of waiter wakeups delivered so far, counted once per park (a
  /// window waiter notified at several intermediate lv values of a
  /// deferred chain still counts once). With targeted wakeups this is
  /// bounded by the number of waits ever parked — the regression tests pin
  /// that bound to keep the publish path O(1) in the backlog.
  std::uint64_t wakeups_delivered() const;

  /// Publish-path split, the scoreboard for the lock-free fast path: a
  /// fast publish updated lv without touching the gate mutex (no parked
  /// waiter, no deferred upgrade); a slow publish took the mutex to wake /
  /// fire deferred upgrades.
  std::uint64_t fast_publishes() const { return fast_publishes_.load(std::memory_order_relaxed); }
  std::uint64_t slow_publishes() const { return slow_publishes_.load(std::memory_order_relaxed); }

  /// Admission lock for the lock-ordered multi-microprotocol slow path.
  /// Never taken by single-mp admissions, waits or publishes.
  std::mutex& admission_mutex() { return admit_mu_; }

  // -- diag::HolderSource --
  std::uint64_t last_published() const override { return lv(); }
  std::vector<diag::HolderEntry> outstanding_holders() const override;

 private:
  /// gv/lv pair plus the Dekker counters, padded to a cache line so gates
  /// of different microprotocols never false-share.
  struct alignas(64) VersionCell {
    std::atomic<std::uint64_t> gv{0};
    std::atomic<std::uint64_t> lv{0};
    /// Waiters registered (or registering) in the lists below. seq_cst
    /// partner of the publish-side lv store.
    std::atomic<std::uint32_t> sleepers{0};
    /// Mirror of deferred_.size(), readable without mu_.
    std::atomic<std::uint32_t> deferred_n{0};
  };

  /// One parked thread: its own cv plus the window [lo, hi) of lv values
  /// it can proceed under (hi == lo + 1 for exact waits). Stack-allocated
  /// by the waiting thread; lives until its wait returns. `comp` is the
  /// waiting computation; `counted` guards the one wakeup-delivered report
  /// per park that the schedule explorer's accounting (and the
  /// wakeups_delivered() bound) relies on; `cancelled` is set (under mu_)
  /// by cancel_waiters after unhooking the entry.
  struct Waiter {
    std::condition_variable cv;
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    std::uint64_t comp = 0;
    bool counted = false;
    bool cancelled = false;
  };

  /// Ring of recent (version, comp) admissions for blocked-state dumps.
  /// Lock-free: the admitting thread writes its slot, snapshot() reads all
  /// slots and keeps entries still above lv. Bounded — under a backlog
  /// deeper than the ring only the newest kHolderRing holders are named
  /// (wait-for edges to older ones still arise transitively through their
  /// own wait records).
  struct HolderSlot {
    std::atomic<std::uint64_t> version{0};
    std::atomic<std::uint64_t> comp{0};
  };
  static constexpr std::size_t kHolderRing = 512;

  /// Post-update half of every publish: fast-exit when nobody can care,
  /// else take mu_ and run wakeups + deferred upgrades.
  void after_publish();
  /// Monotone CAS-max upgrade of lv to `to`, then wake. Caller holds mu_.
  void raise_lv_locked(std::uint64_t to);
  /// Fire every deferred upgrade whose trigger is at or below lv (lock-free
  /// publishers may step lv across several values between slow-path
  /// entries). Caller holds mu_.
  void apply_deferred_locked();
  /// Notify exactly the waiters whose window contains the current lv.
  void wake_matching_locked();

  VersionCell cell_;

  mutable std::mutex mu_;
  std::map<std::uint64_t, std::uint64_t> deferred_;  // trigger lv -> new lv
  /// Exact waiters keyed by the lv value they await. Keys are distinct in
  /// practice (each version has one owner), but on_complete re-waits the
  /// same key a before_execute used, so a multimap keeps this robust.
  std::unordered_multimap<std::uint64_t, Waiter*> exact_waiters_;
  /// Window waiters (VCAbound); scanned linearly on publish — bounds keep
  /// this list short by construction.
  std::vector<Waiter*> window_waiters_;
  std::uint64_t wakeups_delivered_ = 0;

  std::atomic<std::uint64_t> fast_publishes_{0};
  std::atomic<std::uint64_t> slow_publishes_{0};

  std::mutex admit_mu_;  // multi-mp admissions only (lock-ordered)

  std::unique_ptr<HolderSlot[]> holders_ = std::make_unique<HolderSlot[]>(kHolderRing);
};

/// Lazily-populated table of gates, one per microprotocol, shared by all
/// computations of a controller. Lookup of an existing gate is lock-free
/// (open-addressed probe over atomic slots — gates are created once and
/// never removed); only first-touch creation takes the table mutex.
class GateTable {
 public:
  GateTable();
  ~GateTable();

  GateTable(const GateTable&) = delete;
  GateTable& operator=(const GateTable&) = delete;

  VersionGate& gate(MicroprotocolId mp) {
    const std::uint32_t key = mp.value();
    if (key == kEmptyKey) return gate_slow(mp);  // invalid id aliases the empty sentinel
    std::size_t i = probe_start(key);
    for (std::size_t n = 0; n < kSlots; ++n, i = (i + 1) & (kSlots - 1)) {
      const std::uint32_t k = slots_[i].key.load(std::memory_order_acquire);
      if (k == key) return *slots_[i].gate.load(std::memory_order_relaxed);
      if (k == kEmptyKey) break;
    }
    return gate_slow(mp);
  }

 private:
  /// Fixed probe table; controllers see at most the stack's microprotocol
  /// count, far below this. The locked overflow map keeps correctness if a
  /// pathological workload ever exceeds it.
  static constexpr std::size_t kSlots = 2048;
  static constexpr std::uint32_t kEmptyKey = MicroprotocolId::kInvalid;

  struct Slot {
    std::atomic<std::uint32_t> key{kEmptyKey};
    std::atomic<VersionGate*> gate{nullptr};
  };

  static std::size_t probe_start(std::uint32_t key) {
    // Fibonacci hash spreads dense ids over the table.
    return (key * 2654435761u) & (kSlots - 1);
  }

  VersionGate& gate_slow(MicroprotocolId mp);

  std::unique_ptr<Slot[]> slots_ = std::make_unique<Slot[]>(kSlots);
  std::mutex mu_;
  std::size_t used_ = 0;
  std::vector<std::unique_ptr<VersionGate>> owned_;
  std::unordered_map<MicroprotocolId, std::unique_ptr<VersionGate>> overflow_;
};

/// RAII lock-ordered admission over several gates (the multi-microprotocol
/// slow path). Acquires every member gate's admission_mutex() in ascending
/// mp-id order — two admissions sharing any two gates therefore overlap on
/// at least one lock, which makes their gv bumps atomic relative to each
/// other and keeps the wait-for relation a total order (the paper's
/// atomic-admission invariant). Single-mp admissions never take these
/// locks: a computation declaring one microprotocol can share at most one
/// gate with anyone, and the per-gate version chain is already a total
/// order, so it can never close a cycle.
class OrderedAdmission {
 public:
  OrderedAdmission(GateTable& gates, const std::vector<MicroprotocolId>& mps);
  ~OrderedAdmission();

  OrderedAdmission(const OrderedAdmission&) = delete;
  OrderedAdmission& operator=(const OrderedAdmission&) = delete;

 private:
  std::vector<VersionGate*> locked_;  // in lock (mp-id) order
};

}  // namespace samoa
