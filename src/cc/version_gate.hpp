// Version gates — the shared half of the versioning algorithms.
//
// Each microprotocol p has one gate holding the pair of counters from the
// paper: the global version gv_p (bumped at admission, Step 1) and the
// local version lv_p (the version currently allowed to run, upgraded at
// completion, Step 3, or incrementally by VCAbound's Rule 4 / VCAroute's
// Rule 4(b)). The mutex lives with the counters it guards (CP.50); every
// wait is a condition wait (CP.42).
//
// `schedule_set` implements VCAroute's early release correctly: Rule 4(b)
// says "upgrade lv_p = pv[p]_k", but doing so before lv_p has reached
// pv[p]_k - 1 would skip over older computations' turns and break the
// version order the correctness proofs rely on. The deferred upgrade fires
// the moment lv_p reaches the scheduled trigger value.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "cc/controller.hpp"
#include "util/ids.hpp"

namespace samoa {

class VersionGate {
 public:
  /// Step 1: gv += delta; returns the upgraded gv (the computation's
  /// private version pv for this microprotocol). The caller must hold the
  /// controller's admission mutex so multi-microprotocol admissions are
  /// atomic.
  std::uint64_t admit(std::uint64_t delta);

  /// Rule 2 of VCAbasic/VCAroute: block until lv == pv - 1.
  void wait_exact(std::uint64_t pv_minus_1, CCStats& stats);

  /// Rule 2 of VCAbound: block until lo <= lv < hi.
  void wait_window(std::uint64_t lo, std::uint64_t hi, CCStats& stats);

  /// Step 3: lv = v (monotone; asserts no downgrade), then fire deferred
  /// upgrades and wake waiters.
  void set_lv(std::uint64_t v);

  /// VCAbound Rule 4: ++lv.
  void increment_lv();

  /// VCAroute Rule 4(b): when lv reaches `trigger`, set lv = `to`.
  /// Applied immediately if lv == trigger already.
  void schedule_set(std::uint64_t trigger, std::uint64_t to);

  std::uint64_t lv() const;

 private:
  void apply_deferred_locked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t gv_ = 0;
  std::uint64_t lv_ = 0;
  std::map<std::uint64_t, std::uint64_t> deferred_;  // trigger lv -> new lv
};

/// Lazily-populated table of gates, one per microprotocol, shared by all
/// computations of a controller.
class GateTable {
 public:
  VersionGate& gate(MicroprotocolId mp);

 private:
  std::mutex mu_;
  std::unordered_map<MicroprotocolId, std::unique_ptr<VersionGate>> gates_;
};

}  // namespace samoa
