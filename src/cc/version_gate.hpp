// Version gates — the shared half of the versioning algorithms.
//
// Each microprotocol p has one gate holding the pair of counters from the
// paper: the global version gv_p (bumped at admission, Step 1) and the
// local version lv_p (the version currently allowed to run, upgraded at
// completion, Step 3, or incrementally by VCAbound's Rule 4 / VCAroute's
// Rule 4(b)). The mutex lives with the counters it guards (CP.50); every
// wait is a condition wait (CP.42).
//
// `schedule_set` implements VCAroute's early release correctly: Rule 4(b)
// says "upgrade lv_p = pv[p]_k", but doing so before lv_p has reached
// pv[p]_k - 1 would skip over older computations' turns and break the
// version order the correctness proofs rely on. The deferred upgrade fires
// the moment lv_p reaches the scheduled trigger value.
//
// Wakeups are targeted, not broadcast. Every waiter parks on its own
// condition variable, registered under the version it awaits; a publish
// notifies only the waiter(s) whose window the new lv satisfies. With a
// shared cv + notify_all, each publish woke every parked computation so
// one could proceed — O(waiters) wakeups and gate-mutex reacquisitions
// per version. Under a backlog (the E2 join-flood convoy) that makes the
// cost of a publish grow with the backlog itself, and once publish cost
// times backlog outpaces admission inflow the gate livelocks: the process
// looks deadlocked while one thread broadcasts to thousands of waiters
// that cannot proceed.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cc/controller.hpp"
#include "util/ids.hpp"

namespace samoa {

class VersionGate {
 public:
  ~VersionGate();

  /// Step 1: gv += delta; returns the upgraded gv (the computation's
  /// private version pv for this microprotocol). The caller must hold the
  /// controller's admission mutex so multi-microprotocol admissions are
  /// atomic.
  std::uint64_t admit(std::uint64_t delta);

  /// Rule 2 of VCAbasic/VCAroute: block until lv == pv - 1. `who` names
  /// the gated microprotocol in blocked-state dumps.
  void wait_exact(std::uint64_t pv_minus_1, CCStats& stats, const char* who = "");

  /// Rule 2 of VCAbound: block until lo <= lv < hi.
  void wait_window(std::uint64_t lo, std::uint64_t hi, CCStats& stats, const char* who = "");

  /// Step 3: lv = v (monotone; asserts no downgrade), then fire deferred
  /// upgrades and wake waiters.
  void set_lv(std::uint64_t v);

  /// VCAbound Rule 4: ++lv.
  void increment_lv();

  /// VCAroute Rule 4(b): when lv reaches `trigger`, set lv = `to`.
  /// Applied immediately if lv == trigger already.
  void schedule_set(std::uint64_t trigger, std::uint64_t to);

  std::uint64_t lv() const;

  /// Number of waiter notifications delivered so far. With targeted
  /// wakeups this is bounded by the number of waits ever parked (each
  /// waiter is notified once, when its window opens) — the regression
  /// tests pin that bound to keep the publish path O(1) in the backlog.
  std::uint64_t wakeups_delivered() const;

 private:
  /// One parked thread: its own cv plus the window [lo, hi) of lv values
  /// it can proceed under (hi == lo + 1 for exact waits). Stack-allocated
  /// by the waiting thread; lives until its wait returns. `comp` is the
  /// waiting computation and `counted` guards the one wakeup-delivered
  /// report per park that the schedule explorer's accounting relies on (a
  /// window waiter can be notified at several intermediate lv values of a
  /// deferred chain before it runs; only the first may count).
  struct Waiter {
    std::condition_variable cv;
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    std::uint64_t comp = 0;
    bool counted = false;
  };

  void apply_deferred_locked();
  /// Notify exactly the waiters whose window contains the current lv.
  void wake_matching_locked();

  mutable std::mutex mu_;
  std::uint64_t gv_ = 0;
  std::uint64_t lv_ = 0;
  std::map<std::uint64_t, std::uint64_t> deferred_;  // trigger lv -> new lv
  /// Exact waiters keyed by the lv value they await. Keys are distinct in
  /// practice (each version has one owner), but on_complete re-waits the
  /// same key a before_execute used, so a multimap keeps this robust.
  std::unordered_multimap<std::uint64_t, Waiter*> exact_waiters_;
  /// Window waiters (VCAbound); scanned linearly on publish — bounds keep
  /// this list short by construction.
  std::vector<Waiter*> window_waiters_;
  std::uint64_t wakeups_delivered_ = 0;
};

/// Lazily-populated table of gates, one per microprotocol, shared by all
/// computations of a controller.
class GateTable {
 public:
  VersionGate& gate(MicroprotocolId mp);

 private:
  std::mutex mu_;
  std::unordered_map<MicroprotocolId, std::unique_ptr<VersionGate>> gates_;
};

}  // namespace samoa
