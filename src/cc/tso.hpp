// TSO — strict timestamp ordering with rollback and restart.
//
// The paper classifies its deadlock-free algorithms into "1) versioning
// algorithms with allocation of access to event handlers, and 2)
// timestamp-ordering algorithms with rollback/recovery", and details only
// the first group. This module implements the second group's approach:
//
//  * every computation gets a monotone timestamp at admission;
//  * the first handler call on a microprotocol p *claims* p for the
//    computation, and claims are held until the computation completes
//    (strictness: no other computation ever observes uncommitted state);
//  * conflicts resolve by wait-die — an older computation (smaller
//    timestamp) waits for the claim holder; a younger one rolls back its
//    TxVar state (undo log) and restarts with a fresh timestamp. Waits
//    only ever point old -> young, so no cycle can form: deadlock-free,
//    like the versioning family, but via restarts instead of declared
//    version order.
//
// The trade-offs versus the versioning family, measured in bench_tso:
//  + no declaration needed — conflicts are discovered dynamically, so an
//    unknowable M (the paper's reason to fall back from the optimised
//    variants) costs nothing;
//  - state must live in TxVar cells (rollback), computations must be
//    restartable (single-threaded, no external side effects), and heavy
//    contention burns work on restarts.
//
// Asynchronous triggers are rejected under TSO (a restart cannot recall
// an in-flight sibling task).
#pragma once

#include <condition_variable>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "cc/controller.hpp"
#include "util/stats.hpp"

namespace samoa {

class TSOController : public ConcurrencyController {
 public:
  std::unique_ptr<ComputationCC> admit(ComputationId k, const Isolation& spec) override;
  const char* name() const override { return "TSO"; }

  std::uint64_t restarts() const { return restarts_.value(); }

 private:
  friend class TSOComputationCC;

  struct Claim {
    bool held = false;
    std::uint64_t holder_ts = 0;
  };

  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t next_ts_ = 1;
  std::unordered_map<MicroprotocolId, Claim> claims_;
  Counter restarts_;
};

}  // namespace samoa
