// TSO — strict timestamp ordering with rollback and restart.
//
// The paper classifies its deadlock-free algorithms into "1) versioning
// algorithms with allocation of access to event handlers, and 2)
// timestamp-ordering algorithms with rollback/recovery", and details only
// the first group. This module implements the second group's approach:
//
//  * every computation gets a monotone timestamp at admission;
//  * the first handler call on a microprotocol p *claims* p for the
//    computation, and claims are held until the computation completes
//    (strictness: no other computation ever observes uncommitted state);
//  * conflicts resolve by wait-die — an older computation (smaller
//    timestamp) waits for the claim holder; a younger one rolls back its
//    TxVar state (undo log) and restarts with a fresh timestamp. Waits
//    only ever point old -> young, so no cycle can form: deadlock-free,
//    like the versioning family, but via restarts instead of declared
//    version order.
//
// Wakeups are targeted, not broadcast — the same discipline as
// VersionGate and the serial turnstile. Each parked computation waits on
// its own condition variable; a release *hands the claim off* to exactly
// one waiter — the youngest (largest timestamp) — and notifies only it.
// That choice is what makes one wakeup per release sufficient: every
// remaining waiter is older than the new holder (it was older than the
// grantee while both were parked), so its wait-die decision — wait, don't
// die — is unchanged and it needs no re-evaluation wakeup. The invariant
// that makes this airtight: while any claim waiter is parked, the claim
// is never released to the free state (it is handed off instead), so a
// fresh claimant — whose admission timestamp is larger than every parked
// waiter's — can never sneak in and become a holder *older* than a parked
// waiter. With the previous shared broadcast cv, each release woke every
// parked computation on every claim — O(waiters) wakeups per release,
// and under a high-fan-in pile-up (bench_tso's shape) the cost of a
// release grew with the backlog itself.
//
// Wait-die losers ("death waiters") park separately, per claim, until the
// claim that killed them is free or held by a computation at least as
// young as they are; only the releases/grabs that actually satisfy that
// predicate notify them, and the flag latches so a transiently-true
// predicate cannot be lost.
//
// The trade-offs versus the versioning family, measured in bench_tso:
//  + no declaration needed — conflicts are discovered dynamically, so an
//    unknowable M (the paper's reason to fall back from the optimised
//    variants) costs nothing;
//  - state must live in TxVar cells (rollback), computations must be
//    restartable (single-threaded, no external side effects), and heavy
//    contention burns work on restarts.
//
// Asynchronous triggers are rejected under TSO (a restart cannot recall
// an in-flight sibling task).
#pragma once

#include <condition_variable>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cc/controller.hpp"
#include "util/stats.hpp"

namespace samoa {

class TSOController : public ConcurrencyController {
 public:
  ~TSOController() override;

  std::unique_ptr<ComputationCC> admit(ComputationId k, const Isolation& spec) override;
  const char* name() const override { return "TSO"; }

  std::uint64_t restarts() const { return restarts_.value(); }

  /// Number of claim/death waits that parked, and the number of targeted
  /// notifications delivered to them. With handoff wakeups these are equal
  /// (every delivered wakeup unparks its target) — the regression test
  /// pins claim_wakeups() <= claim_parks() to keep releases O(1) in the
  /// backlog. Under the old broadcast cv, wakeups grew as parks x releases.
  std::uint64_t claim_parks() const { return claim_parks_.value(); }
  std::uint64_t claim_wakeups() const { return claim_wakeups_.value(); }

 private:
  friend class TSOComputationCC;

  /// A parked computation older than the claim holder, waiting to be
  /// handed the claim. Stack-allocated by the waiting thread; `granted`
  /// latches the handoff (set + notified by the releaser, under mu_).
  struct ClaimWaiter {
    std::condition_variable cv;
    std::uint64_t ts = 0;
    std::uint64_t comp = 0;
    bool granted = false;
  };

  /// A wait-die loser backing off until the killer claim clears: predicate
  /// "claim free, or holder at least as young as me", latched in `runnable`
  /// by whichever release/grab makes it true.
  struct DeathWaiter {
    std::condition_variable cv;
    std::uint64_t ts = 0;
    std::uint64_t comp = 0;
    bool runnable = false;
  };

  struct Claim {
    bool held = false;
    std::uint64_t holder_ts = 0;
    std::vector<ClaimWaiter*> waiters;        // all strictly older than holder_ts
    std::vector<DeathWaiter*> death_waiters;  // wait-die losers backing off
  };

  /// Release a claim held by the caller: hand off to the youngest parked
  /// waiter if any (claim stays held), else free it and wake every death
  /// waiter. Caller holds mu_.
  void release_claim_locked(Claim& claim);
  /// Notify death waiters whose predicate the current claim state
  /// satisfies. Caller holds mu_.
  void wake_satisfied_death_waiters_locked(Claim& claim);

  std::mutex mu_;
  std::uint64_t next_ts_ = 1;
  std::unordered_map<MicroprotocolId, Claim> claims_;
  Counter restarts_;
  Counter claim_parks_;
  Counter claim_wakeups_;
};

}  // namespace samoa
