// Unsynchronised controller — the Cactus-like baseline.
//
// Cactus "does not restrict the amount of concurrency but ... depends on
// the programmer, who must implement the required synchronisation policy
// using standard language facilities" (paper Section 1). This controller
// gates nothing: computations interleave freely, so protocols are only
// correct if they synchronise by hand (see the manual-lock variants in the
// benchmarks) — or they exhibit exactly the class of bugs Section 3
// describes, which the tests and bench_viewchange demonstrate.
#pragma once

#include "cc/controller.hpp"

namespace samoa {

class UnsyncController : public ConcurrencyController {
 public:
  std::unique_ptr<ComputationCC> admit(ComputationId k, const Isolation& spec) override;
  const char* name() const override { return "unsync"; }
};

}  // namespace samoa
