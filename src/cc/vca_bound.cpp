#include "cc/vca_bound.hpp"

#include <sstream>
#include <unordered_map>

#include "core/errors.hpp"
#include "diag/wait_registry.hpp"

namespace samoa {

struct Slot {
  std::uint64_t pv = 0;       // private version (upper edge of the window)
  std::uint64_t bound = 0;    // declared least upper bound
  std::uint64_t used = 0;     // visits issued so far (guarded by mu)
};

class VCABoundComputationCC : public ComputationCC {
 public:
  VCABoundComputationCC(VCABoundController& ctrl, ComputationId k,
                        std::unordered_map<MicroprotocolId, Slot> slots)
      : ctrl_(ctrl), k_(k), slots_(std::move(slots)) {}

  void on_issue(HandlerId, const Handler& h) override {
    const auto mp = h.owner().id();
    auto it = slots_.find(mp);
    if (it == slots_.end()) {
      std::ostringstream os;
      os << "isolated bound: computation " << k_ << " called handler '" << h.name()
         << "' of undeclared microprotocol '" << h.owner().name() << "'";
      throw IsolationError(os.str());
    }
    std::unique_lock lock(mu_);
    if (it->second.used >= it->second.bound) {
      std::ostringstream os;
      os << "isolated bound: computation " << k_ << " exhausted its bound of "
         << it->second.bound << " visits to microprotocol '" << h.owner().name() << "'";
      throw IsolationError(os.str());
    }
    ++it->second.used;
  }

  void before_execute(const Handler& h) override {
    const Slot& s = slots_.at(h.owner().id());
    // Rule 2: pv - bound <= lv < pv.
    ctrl_.gates_.gate(h.owner().id())
        .wait_window(s.pv - s.bound, s.pv, ctrl_.stats_, h.owner().name().c_str());
  }

  void after_execute(const Handler& h) override {
    // Rule 4: every completed handler execution upgrades lv by one.
    ctrl_.gates_.gate(h.owner().id()).increment_lv();
  }

  void on_complete() override {
    // Rule 3: only microprotocols visited fewer times than declared still
    // hold lv below pv; wait for the window, then close it.
    for (const auto& [mp, s] : slots_) {
      auto& gate = ctrl_.gates_.gate(mp);
      if (gate.lv() >= s.pv) continue;  // budget fully used: Rule 4 closed it
      gate.wait_window(s.pv - s.bound, s.pv, ctrl_.stats_);
      gate.set_lv(s.pv);
    }
  }

 private:
  VCABoundController& ctrl_;
  ComputationId k_;
  std::mutex mu_;  // guards the `used` counters
  std::unordered_map<MicroprotocolId, Slot> slots_;
};

std::unique_ptr<ComputationCC> VCABoundController::admit(ComputationId k, const Isolation& spec) {
  if (spec.kind() != Isolation::Kind::Bound) {
    throw ConfigError("VCAbound requires Isolation::bound declarations (got " + spec.describe() +
                      ")");
  }
  stats_.admissions.add();
  std::unordered_map<MicroprotocolId, Slot> slots;
  {
    std::unique_lock lock(admission_mu_);
    for (MicroprotocolId mp : spec.members()) {
      const std::uint64_t bound = spec.bounds().at(mp);
      Slot s;
      s.bound = bound;
      auto& gate = gates_.gate(mp);
      s.pv = gate.admit(bound);  // Rule 1: gv += bound[p]
      diag::WaitRegistry::instance().note_admission(&gate, nullptr, s.pv, k.value());
      slots.emplace(mp, s);
    }
  }
  return std::make_unique<VCABoundComputationCC>(*this, k, std::move(slots));
}

}  // namespace samoa
