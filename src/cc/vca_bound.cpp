#include "cc/vca_bound.hpp"

#include <sstream>
#include <unordered_map>

#include "core/errors.hpp"

namespace samoa {

struct Slot {
  std::uint64_t pv = 0;       // private version (upper edge of the window)
  std::uint64_t bound = 0;    // declared least upper bound
  std::uint64_t used = 0;     // visits issued so far (guarded by mu)
};

class VCABoundComputationCC : public ComputationCC {
 public:
  VCABoundComputationCC(VCABoundController& ctrl, ComputationId k,
                        std::unordered_map<MicroprotocolId, Slot> slots)
      : ctrl_(ctrl), k_(k), slots_(std::move(slots)) {}

  void on_issue(HandlerId, const Handler& h) override {
    const auto mp = h.owner().id();
    auto it = slots_.find(mp);
    if (it == slots_.end()) {
      std::ostringstream os;
      os << "isolated bound: computation " << k_ << " called handler '" << h.name()
         << "' of undeclared microprotocol '" << h.owner().name() << "'";
      throw IsolationError(os.str());
    }
    std::unique_lock lock(mu_);
    if (it->second.used >= it->second.bound) {
      std::ostringstream os;
      os << "isolated bound: computation " << k_ << " exhausted its bound of "
         << it->second.bound << " visits to microprotocol '" << h.owner().name() << "'";
      throw IsolationError(os.str());
    }
    ++it->second.used;
  }

  void before_execute(const Handler& h) override {
    const Slot& s = slots_.at(h.owner().id());
    // Rule 2: pv - bound <= lv < pv.
    ctrl_.gates_.gate(h.owner().id())
        .wait_window(s.pv - s.bound, s.pv, ctrl_.stats_, h.owner().name().c_str());
  }

  void after_execute(const Handler& h) override {
    // Rule 4: every completed handler execution upgrades lv by one.
    ctrl_.gates_.gate(h.owner().id()).increment_lv();
  }

  void on_complete() override {
    // Rule 3: only microprotocols visited fewer times than declared still
    // hold lv below pv; wait for the window, then close it.
    for (const auto& [mp, s] : slots_) {
      auto& gate = ctrl_.gates_.gate(mp);
      if (gate.lv() >= s.pv) continue;  // budget fully used: Rule 4 closed it
      gate.wait_window(s.pv - s.bound, s.pv, ctrl_.stats_);
      gate.set_lv(s.pv);
    }
  }

 private:
  VCABoundController& ctrl_;
  ComputationId k_;
  std::mutex mu_;  // guards the `used` counters
  std::unordered_map<MicroprotocolId, Slot> slots_;
};

std::unique_ptr<ComputationCC> VCABoundController::admit(ComputationId k, const Isolation& spec) {
  if (spec.kind() != Isolation::Kind::Bound) {
    throw ConfigError("VCAbound requires Isolation::bound declarations (got " + spec.describe() +
                      ")");
  }
  stats_.admissions.add();
  std::unordered_map<MicroprotocolId, Slot> slots;
  const auto& members = spec.members();
  auto admit_one = [&](MicroprotocolId mp) {
    const std::uint64_t bound = spec.bounds().at(mp);
    Slot s;
    s.bound = bound;
    s.pv = gates_.gate(mp).admit(bound, k.value());  // Rule 1: gv += bound[p]
    slots.emplace(mp, s);
  };
  if (members.size() == 1) {
    // Single microprotocol: the window claim is one lock-free fetch_add.
    stats_.admit_fast.add();
    admit_one(members.front());
  } else {
    // Lock-ordered multi-mp path; see VCABasicController::admit.
    stats_.admit_slow.add();
    OrderedAdmission locks(gates_, members);
    for (MicroprotocolId mp : members) admit_one(mp);
  }
  return std::make_unique<VCABoundComputationCC>(*this, k, std::move(slots));
}

}  // namespace samoa
