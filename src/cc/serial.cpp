#include "cc/serial.hpp"

#include "diag/wait_registry.hpp"

namespace samoa {

class SerialComputationCC : public ComputationCC {
 public:
  SerialComputationCC(SerialController& ctrl, std::uint64_t ticket, ComputationId id)
      : ctrl_(ctrl), ticket_(ticket), id_(id) {}

  void on_start() override {
    std::unique_lock lock(ctrl_.mu_);
    if (ctrl_.now_serving_ != ticket_) {
      ctrl_.stats_.gate_waits.add();
      const auto start = Clock::now();
      std::condition_variable cv;
      ctrl_.waiters_.emplace(ticket_,
                             SerialController::TurnWaiter{&cv, diag::current_computation(), false});
      {
        diag::ScopedWait wait(diag::WaitKind::kSerialTurn, &ctrl_, "serial", ticket_, ticket_ + 1,
                              ctrl_.now_serving_);
        cv.wait(lock, [&] { return ctrl_.now_serving_ == ticket_; });
      }
      ctrl_.waiters_.erase(ticket_);
      ctrl_.stats_.gate_wait_time.record(
          std::chrono::duration_cast<Nanos>(Clock::now() - start));
    }
  }

  void on_issue(HandlerId, const Handler&) override {}
  void before_execute(const Handler&) override {}
  void after_execute(const Handler&) override {}

  void on_complete() override {
    std::unique_lock lock(ctrl_.mu_);
    ++ctrl_.now_serving_;
    // now_serving_ reached ticket_ + 1: this ticket's hold is over.
    diag::WaitRegistry::instance().note_release(&ctrl_, ticket_);
    diag::WaitRegistry::instance().note_progress();
    // Wake only the next ticket (if it is already parked; if not, it will
    // see now_serving_ when it reaches on_start).
    const auto it = ctrl_.waiters_.find(ctrl_.now_serving_);
    if (it != ctrl_.waiters_.end()) {
      it->second.cv->notify_one();
      if (!it->second.counted) {
        it->second.counted = true;
        diag::WaitRegistry::instance().note_wakeup_delivered(it->second.comp);
      }
    }
  }

 private:
  SerialController& ctrl_;
  std::uint64_t ticket_;
  ComputationId id_;
};

SerialController::~SerialController() { diag::WaitRegistry::instance().forget_subject(this); }

std::unique_ptr<ComputationCC> SerialController::admit(ComputationId id, const Isolation&) {
  stats_.admissions.add();
  std::unique_lock lock(mu_);
  const std::uint64_t ticket = next_ticket_++;
  diag::WaitRegistry::instance().note_admission(this, "serial", ticket, id.value());
  return std::make_unique<SerialComputationCC>(*this, ticket, id);
}

}  // namespace samoa
