#include "cc/serial.hpp"

namespace samoa {

class SerialComputationCC : public ComputationCC {
 public:
  SerialComputationCC(SerialController& ctrl, std::uint64_t ticket)
      : ctrl_(ctrl), ticket_(ticket) {}

  void on_start() override {
    std::unique_lock lock(ctrl_.mu_);
    if (ctrl_.now_serving_ != ticket_) {
      ctrl_.stats_.gate_waits.add();
      const auto start = Clock::now();
      ctrl_.cv_.wait(lock, [&] { return ctrl_.now_serving_ == ticket_; });
      ctrl_.stats_.gate_wait_time.record(
          std::chrono::duration_cast<Nanos>(Clock::now() - start));
    }
  }

  void on_issue(HandlerId, const Handler&) override {}
  void before_execute(const Handler&) override {}
  void after_execute(const Handler&) override {}

  void on_complete() override {
    std::unique_lock lock(ctrl_.mu_);
    ++ctrl_.now_serving_;
    ctrl_.cv_.notify_all();
  }

 private:
  SerialController& ctrl_;
  std::uint64_t ticket_;
};

std::unique_ptr<ComputationCC> SerialController::admit(ComputationId, const Isolation&) {
  stats_.admissions.add();
  std::unique_lock lock(mu_);
  return std::make_unique<SerialComputationCC>(*this, next_ticket_++);
}

}  // namespace samoa
