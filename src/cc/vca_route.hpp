// VCAroute — Version-Counting with Routing Pattern (paper Section 5.3).
//
// The declaration is a directed graph of handler calls. Compared to
// VCAbasic, the algorithm can *release a microprotocol early*: once all of
// p's handlers are inactive and none is reachable from a still-active
// handler, p can never be visited again by this computation, so its local
// version can be upgraded before the computation completes (Rule 4(b)).
//
// Two fidelity points, both tested:
//  * A handler becomes "active" the moment the event targeting it is
//    issued (the paper's Rule 2 parenthetical: the caller "must not be
//    allowed to complete before this change comes into effect") —
//    otherwise a finished caller with a still-queued asynchronous callee
//    would let Rule 4(b) release the callee's microprotocol prematurely.
//  * Rule 4(b)'s upgrade "lv_p = pv[p]_k" must not jump over older
//    computations' turns; the upgrade is therefore deferred until lv_p
//    reaches pv[p]_k - 1 (VersionGate::schedule_set), preserving the
//    version order on which the isolation proof rests.
#pragma once

#include "cc/controller.hpp"
#include "cc/version_gate.hpp"

namespace samoa {

class VCARouteController : public ConcurrencyController {
 public:
  std::unique_ptr<ComputationCC> admit(ComputationId k, const Isolation& spec) override;
  const char* name() const override { return "VCAroute"; }

 private:
  friend class VCARouteComputationCC;

  GateTable gates_;
};

}  // namespace samoa
