#include "cc/tso.hpp"

#include <algorithm>

#include "core/errors.hpp"
#include "diag/wait_registry.hpp"

namespace samoa {

class TSOComputationCC : public ComputationCC {
 public:
  TSOComputationCC(TSOController& ctrl, std::uint64_t ts) : ctrl_(ctrl), ts_(ts) {}

  bool allows_async() const override { return false; }

  void on_issue(HandlerId, const Handler&) override {
    // No declaration to validate: conflicts are discovered at claim time.
  }

  void before_execute(const Handler& h) override {
    const MicroprotocolId mp = h.owner().id();
    std::unique_lock lock(ctrl_.mu_);
    if (held_.contains(mp)) return;  // re-entry on an owned microprotocol
    auto& claim = ctrl_.claims_[mp];
    if (claim.held && claim.holder_ts != ts_) {
      if (ts_ > claim.holder_ts) {
        // Wait-die: the younger computation dies (rolls back + restarts,
        // keeping its timestamp); waits only ever point old -> young.
        ctrl_.restarts_.add();
        death_mp_ = mp;
        throw RestartNeeded{ts_};
      }
      // Older than the holder: park until the claim is handed to us. No
      // re-evaluation loop is needed — the holder can only ever get
      // *younger* from here (handoff goes to the youngest waiter, and a
      // free claim with waiters parked never happens), so "wait" stays
      // the right wait-die verdict until the handoff lands on us.
      ctrl_.stats_.gate_waits.add();
      ctrl_.claim_parks_.add();
      const auto start = Clock::now();
      TSOController::ClaimWaiter self;
      self.ts = ts_;
      self.comp = diag::current_computation();
      claim.waiters.push_back(&self);
      {
        diag::ScopedWait wait(diag::WaitKind::kClaim, &ctrl_, "tso-claim", ts_, ts_ + 1,
                              claim.holder_ts);
        self.cv.wait(lock, [&] { return self.granted; });
      }
      // The releaser already removed us from claim.waiters and set
      // holder_ts = ts_ with held still true; just record ownership.
      ctrl_.stats_.gate_wait_time.record(
          std::chrono::duration_cast<Nanos>(Clock::now() - start));
      held_.insert(mp);
      return;
    }
    claim.held = true;
    claim.holder_ts = ts_;
    held_.insert(mp);
    // A fresh grab can satisfy death waiters (holder now >= their ts).
    ctrl_.wake_satisfied_death_waiters_locked(claim);
  }

  void after_execute(const Handler&) override {
    // Strictness: claims are held to completion, not per call.
  }

  void on_complete() override { release_all(); }

  /// Restart path: drop every claim (the undo log rolls back afterwards),
  /// then wait — holding nothing, so no deadlock risk — until the claim
  /// that killed us is free. Retrying immediately would just die again
  /// while the older holder still runs.
  void on_abort() override {
    release_all();
    if (!death_mp_.valid()) return;
    std::unique_lock lock(ctrl_.mu_);
    auto& claim = ctrl_.claims_[death_mp_];
    if (claim.held && claim.holder_ts < ts_) {
      ctrl_.claim_parks_.add();
      TSOController::DeathWaiter self;
      self.ts = ts_;
      self.comp = diag::current_computation();
      claim.death_waiters.push_back(&self);
      {
        diag::ScopedWait wait(diag::WaitKind::kClaimAbort, &ctrl_, "tso-claim", ts_, ts_ + 1,
                              claim.holder_ts);
        self.cv.wait(lock, [&] { return self.runnable; });
      }
      std::erase(claim.death_waiters, &self);
    }
    death_mp_ = MicroprotocolId{};
  }

  std::uint64_t timestamp() const { return ts_; }

 private:
  void release_all() {
    std::unique_lock lock(ctrl_.mu_);
    for (MicroprotocolId mp : held_) {
      auto& claim = ctrl_.claims_[mp];
      if (claim.held && claim.holder_ts == ts_) ctrl_.release_claim_locked(claim);
    }
    held_.clear();
    diag::WaitRegistry::instance().note_progress();
  }

  TSOController& ctrl_;
  std::uint64_t ts_;
  std::unordered_set<MicroprotocolId> held_;
  MicroprotocolId death_mp_;  // claim that triggered the last wait-die loss
};

TSOController::~TSOController() { diag::WaitRegistry::instance().forget_subject(this); }

void TSOController::release_claim_locked(Claim& claim) {
  if (!claim.waiters.empty()) {
    // Hand off to the youngest parked waiter. Everyone left is older than
    // the new holder, so their wait verdicts are unchanged: one targeted
    // notify per release, independent of the backlog.
    auto it = std::max_element(
        claim.waiters.begin(), claim.waiters.end(),
        [](const ClaimWaiter* a, const ClaimWaiter* b) { return a->ts < b->ts; });
    ClaimWaiter* w = *it;
    claim.waiters.erase(it);
    claim.holder_ts = w->ts;  // held stays true: no fresh claimant can cut in
    w->granted = true;
    w->cv.notify_one();
    claim_wakeups_.add();
    diag::WaitRegistry::instance().note_wakeup_delivered(w->comp);
    return;
  }
  claim.held = false;
  wake_satisfied_death_waiters_locked(claim);
}

void TSOController::wake_satisfied_death_waiters_locked(Claim& claim) {
  for (DeathWaiter* d : claim.death_waiters) {
    if (d->runnable) continue;
    if (!claim.held || claim.holder_ts >= d->ts) {
      d->runnable = true;  // latch: a later re-grab must not strand the wake
      d->cv.notify_one();
      claim_wakeups_.add();
      diag::WaitRegistry::instance().note_wakeup_delivered(d->comp);
    }
  }
}

std::unique_ptr<ComputationCC> TSOController::admit(ComputationId, const Isolation&) {
  stats_.admissions.add();
  std::unique_lock lock(mu_);
  return std::make_unique<TSOComputationCC>(*this, next_ts_++);
}

}  // namespace samoa
