#include "cc/tso.hpp"

#include "core/errors.hpp"

namespace samoa {

class TSOComputationCC : public ComputationCC {
 public:
  TSOComputationCC(TSOController& ctrl, std::uint64_t ts) : ctrl_(ctrl), ts_(ts) {}

  bool allows_async() const override { return false; }

  void on_issue(HandlerId, const Handler&) override {
    // No declaration to validate: conflicts are discovered at claim time.
  }

  void before_execute(const Handler& h) override {
    const MicroprotocolId mp = h.owner().id();
    std::unique_lock lock(ctrl_.mu_);
    if (held_.contains(mp)) return;  // re-entry on an owned microprotocol
    auto& claim = ctrl_.claims_[mp];
    const auto start = Clock::now();
    bool waited = false;
    while (claim.held && claim.holder_ts != ts_) {
      if (ts_ > claim.holder_ts) {
        // Wait-die: the younger computation dies (rolls back + restarts,
        // keeping its timestamp); waits only ever point old -> young.
        ctrl_.restarts_.add();
        death_mp_ = mp;
        throw RestartNeeded{ts_};
      }
      // Older than the holder: wait, but only until the *holder changes* —
      // the claim may be released and re-grabbed by an even older
      // computation, in which case the die-vs-wait decision must be
      // re-evaluated (waiting on an older holder would break wait-die's
      // old->young wait invariant and allow deadlock).
      waited = true;
      ctrl_.stats_.gate_waits.add();
      const std::uint64_t observed_holder = claim.holder_ts;
      ctrl_.cv_.wait(lock, [&] { return !claim.held || claim.holder_ts != observed_holder; });
    }
    if (waited) {
      ctrl_.stats_.gate_wait_time.record(
          std::chrono::duration_cast<Nanos>(Clock::now() - start));
    }
    claim.held = true;
    claim.holder_ts = ts_;
    held_.insert(mp);
  }

  void after_execute(const Handler&) override {
    // Strictness: claims are held to completion, not per call.
  }

  void on_complete() override { release_all(); }

  /// Restart path: drop every claim (the undo log rolls back afterwards),
  /// then wait — holding nothing, so no deadlock risk — until the claim
  /// that killed us is free. Retrying immediately would just die again
  /// while the older holder still runs.
  void on_abort() override {
    release_all();
    if (!death_mp_.valid()) return;
    std::unique_lock lock(ctrl_.mu_);
    auto& claim = ctrl_.claims_[death_mp_];
    ctrl_.cv_.wait(lock, [&] { return !claim.held || claim.holder_ts >= ts_; });
    death_mp_ = MicroprotocolId{};
  }

  std::uint64_t timestamp() const { return ts_; }

 private:
  void release_all() {
    std::unique_lock lock(ctrl_.mu_);
    for (MicroprotocolId mp : held_) {
      auto& claim = ctrl_.claims_[mp];
      if (claim.held && claim.holder_ts == ts_) claim.held = false;
    }
    held_.clear();
    ctrl_.cv_.notify_all();
  }

  TSOController& ctrl_;
  std::uint64_t ts_;
  std::unordered_set<MicroprotocolId> held_;
  MicroprotocolId death_mp_;  // claim that triggered the last wait-die loss
};

std::unique_ptr<ComputationCC> TSOController::admit(ComputationId, const Isolation&) {
  stats_.admissions.add();
  std::unique_lock lock(mu_);
  return std::make_unique<TSOComputationCC>(*this, next_ts_++);
}

}  // namespace samoa
