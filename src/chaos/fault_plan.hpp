// Declarative fault plans.
//
// A FaultPlan is a schedule of fault injections — crashes, recoveries,
// partitions, heals, loss bursts, and arbitrary scripted calls — pinned to
// virtual-time offsets. Tests and benches build one plan and hand it to a
// ChaosEngine, which arms every action on a TimerService; under the
// VirtualClock the whole scenario is deterministic and replayable, so one
// plan serves the chaos test, the determinism test and the recovery bench
// identically (Babel's crash/recovery testing discipline, PAPERS.md).
//
// The plan layer depends only on the network simulator: protocol-level
// steps (restarting a GroupNode, issuing the rejoin request) enter a plan
// as labelled `call` actions, keeping src/chaos free of gc knowledge.
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "net/sim_network.hpp"
#include "util/ids.hpp"

namespace samoa::chaos {

struct FaultAction {
  enum class Kind {
    kCrash,
    kRecover,
    kPartition,
    kHeal,
    kPartitionOneway,
    kHealOneway,
    kLossBurst,
    kLossClear,
    kCall,
  };

  std::chrono::microseconds at{0};  // virtual-time offset from engine start
  Kind kind = Kind::kCall;
  SiteId a;  // crash/recover target; one partition endpoint
  SiteId b;  // the other partition endpoint
  net::LinkOptions link;      // loss burst: defaults override while active
  std::string label;          // call: shown in the engine log
  std::function<void()> fn;   // call: the scripted step
};

class FaultPlan {
 public:
  /// Network-level crash: every packet to/from `site` is dropped.
  FaultPlan& crash(std::chrono::microseconds at, SiteId site);
  /// Undo a network-level crash (protocol-level rejoin is a call()).
  FaultPlan& recover(std::chrono::microseconds at, SiteId site);
  /// Cut both directions between a and b.
  FaultPlan& partition(std::chrono::microseconds at, SiteId a, SiteId b);
  /// Heal a partition.
  FaultPlan& heal(std::chrono::microseconds at, SiteId a, SiteId b);
  /// Cut only the a -> b direction (asymmetric partition: a's packets to b
  /// are lost while b can still reach a).
  FaultPlan& partition_oneway(std::chrono::microseconds at, SiteId a, SiteId b);
  /// Heal an asymmetric cut of the a -> b direction.
  FaultPlan& heal_oneway(std::chrono::microseconds at, SiteId a, SiteId b);
  /// Flapping link: starting at `at`, cut and heal a <-> b `count` times,
  /// each cut lasting `period` with `period` of healed link in between
  /// (cut at `at`, heal at `at+period`, cut at `at+2*period`, ...).
  FaultPlan& flap(std::chrono::microseconds at, SiteId a, SiteId b,
                  std::chrono::microseconds period, std::size_t count);
  /// Override the network's default link options (typically with a high
  /// drop_probability) for [from, until); the previous defaults are
  /// restored at `until`.
  FaultPlan& loss_burst(std::chrono::microseconds from, std::chrono::microseconds until,
                        net::LinkOptions burst);
  /// Arbitrary scripted step (node restart, rejoin request, probe, ...).
  FaultPlan& call(std::chrono::microseconds at, std::string label, std::function<void()> fn);

  const std::vector<FaultAction>& actions() const { return actions_; }

 private:
  std::vector<FaultAction> actions_;
};

}  // namespace samoa::chaos
