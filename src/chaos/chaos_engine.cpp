#include "chaos/chaos_engine.hpp"

#include <sstream>

namespace samoa::chaos {

namespace {
std::string fault_label(const FaultAction& action) {
  switch (action.kind) {
    case FaultAction::Kind::kCrash:
      return "crash:" + std::to_string(action.a.value());
    case FaultAction::Kind::kRecover:
      return "recover:" + std::to_string(action.a.value());
    case FaultAction::Kind::kPartition:
      return "cut:" + std::to_string(action.a.value()) + "-" + std::to_string(action.b.value());
    case FaultAction::Kind::kHeal:
      return "heal:" + std::to_string(action.a.value()) + "-" + std::to_string(action.b.value());
    case FaultAction::Kind::kPartitionOneway:
      return "cut1:" + std::to_string(action.a.value()) + ">" + std::to_string(action.b.value());
    case FaultAction::Kind::kHealOneway:
      return "heal1:" + std::to_string(action.a.value()) + ">" + std::to_string(action.b.value());
    case FaultAction::Kind::kLossBurst:
      return "loss_on";
    case FaultAction::Kind::kLossClear:
      return "loss_off";
    case FaultAction::Kind::kCall:
      return "call:" + action.label;
  }
  return "fault";
}
}  // namespace

ChaosEngine::ChaosEngine(net::SimNetwork& net, net::TimerService& timers, Route route)
    : net_(net), timers_(timers), route_(route) {}

void ChaosEngine::arm(const FaultPlan& plan) {
  for (const FaultAction& action : plan.actions()) {
    if (route_ == Route::kNetwork) {
      net_.schedule_control(action.at, fault_label(action), [this, action] { apply(action); });
    } else {
      timers_.schedule(action.at, [this, action] { apply(action); });
    }
  }
}

std::vector<std::string> ChaosEngine::log() const {
  std::unique_lock lock(mu_);
  return log_;
}

void ChaosEngine::note(const std::string& line) {
  const auto now = timers_.clock().now().time_since_epoch();
  std::ostringstream os;
  os << "[t=" << std::chrono::duration_cast<std::chrono::microseconds>(now).count() << "us] "
     << line;
  std::unique_lock lock(mu_);
  log_.push_back(os.str());
}

void ChaosEngine::apply(const FaultAction& action) {
  std::ostringstream os;
  switch (action.kind) {
    case FaultAction::Kind::kCrash:
      net_.crash(action.a);
      stats_.crashes.add();
      os << "crash site " << action.a.value();
      break;
    case FaultAction::Kind::kRecover:
      net_.recover(action.a);
      stats_.recoveries.add();
      os << "recover site " << action.a.value();
      break;
    case FaultAction::Kind::kPartition:
      net_.set_partitioned(action.a, action.b, true);
      stats_.partitions.add();
      os << "partition " << action.a.value() << " <-> " << action.b.value();
      break;
    case FaultAction::Kind::kHeal:
      net_.set_partitioned(action.a, action.b, false);
      stats_.heals.add();
      os << "heal " << action.a.value() << " <-> " << action.b.value();
      break;
    case FaultAction::Kind::kPartitionOneway:
      net_.set_partitioned_oneway(action.a, action.b, true);
      stats_.partitions.add();
      os << "partition " << action.a.value() << " -> " << action.b.value() << " (one-way)";
      break;
    case FaultAction::Kind::kHealOneway:
      net_.set_partitioned_oneway(action.a, action.b, false);
      stats_.heals.add();
      os << "heal " << action.a.value() << " -> " << action.b.value() << " (one-way)";
      break;
    case FaultAction::Kind::kLossBurst: {
      std::unique_lock lock(mu_);
      if (!burst_active_) {
        saved_defaults_ = net_.defaults();
        burst_active_ = true;
      }
      lock.unlock();
      net_.set_defaults(action.link);
      stats_.loss_bursts.add();
      os << "loss burst on (drop " << action.link.drop_probability << ")";
      break;
    }
    case FaultAction::Kind::kLossClear: {
      std::unique_lock lock(mu_);
      const bool active = burst_active_;
      burst_active_ = false;
      const net::LinkOptions restore = saved_defaults_;
      lock.unlock();
      if (active) net_.set_defaults(restore);
      os << "loss burst off";
      break;
    }
    case FaultAction::Kind::kCall:
      if (action.fn) action.fn();
      stats_.calls.add();
      os << "call: " << action.label;
      break;
  }
  note(os.str());
}

}  // namespace samoa::chaos
