#include "chaos/fault_plan.hpp"

namespace samoa::chaos {

FaultPlan& FaultPlan::crash(std::chrono::microseconds at, SiteId site) {
  FaultAction a;
  a.at = at;
  a.kind = FaultAction::Kind::kCrash;
  a.a = site;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::recover(std::chrono::microseconds at, SiteId site) {
  FaultAction a;
  a.at = at;
  a.kind = FaultAction::Kind::kRecover;
  a.a = site;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::partition(std::chrono::microseconds at, SiteId a, SiteId b) {
  FaultAction act;
  act.at = at;
  act.kind = FaultAction::Kind::kPartition;
  act.a = a;
  act.b = b;
  actions_.push_back(std::move(act));
  return *this;
}

FaultPlan& FaultPlan::heal(std::chrono::microseconds at, SiteId a, SiteId b) {
  FaultAction act;
  act.at = at;
  act.kind = FaultAction::Kind::kHeal;
  act.a = a;
  act.b = b;
  actions_.push_back(std::move(act));
  return *this;
}

FaultPlan& FaultPlan::partition_oneway(std::chrono::microseconds at, SiteId a, SiteId b) {
  FaultAction act;
  act.at = at;
  act.kind = FaultAction::Kind::kPartitionOneway;
  act.a = a;
  act.b = b;
  actions_.push_back(std::move(act));
  return *this;
}

FaultPlan& FaultPlan::heal_oneway(std::chrono::microseconds at, SiteId a, SiteId b) {
  FaultAction act;
  act.at = at;
  act.kind = FaultAction::Kind::kHealOneway;
  act.a = a;
  act.b = b;
  actions_.push_back(std::move(act));
  return *this;
}

FaultPlan& FaultPlan::flap(std::chrono::microseconds at, SiteId a, SiteId b,
                           std::chrono::microseconds period, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    partition(at + 2 * i * period, a, b);
    heal(at + (2 * i + 1) * period, a, b);
  }
  return *this;
}

FaultPlan& FaultPlan::loss_burst(std::chrono::microseconds from, std::chrono::microseconds until,
                                 net::LinkOptions burst) {
  FaultAction on;
  on.at = from;
  on.kind = FaultAction::Kind::kLossBurst;
  on.link = burst;
  actions_.push_back(std::move(on));
  FaultAction off;
  off.at = until;
  off.kind = FaultAction::Kind::kLossClear;
  actions_.push_back(std::move(off));
  return *this;
}

FaultPlan& FaultPlan::call(std::chrono::microseconds at, std::string label,
                           std::function<void()> fn) {
  FaultAction a;
  a.at = at;
  a.kind = FaultAction::Kind::kCall;
  a.label = std::move(label);
  a.fn = std::move(fn);
  actions_.push_back(std::move(a));
  return *this;
}

}  // namespace samoa::chaos
