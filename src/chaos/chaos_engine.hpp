// ChaosEngine — arms a FaultPlan on a TimerService (or on the network's
// control-event queue).
//
// Every action of the plan becomes one timer callback at its virtual-time
// offset; under a VirtualClock each fires inside its own serialized
// dispatch turn, so fault injection interleaves deterministically with
// protocol events. The engine keeps a timestamped log of everything it
// applied (for chaos-test summaries) plus per-kind counters.
//
// Route::kNetwork instead arms each action as a SimNetwork control event
// (schedule_control). Functionally identical timing under the default
// delivery order, but when a DeliveryHook is installed every action's
// firing *relative to packet deliveries at the same virtual instant*
// becomes an explorable 'n' decision — fault timing joins delivery order
// in the explored schedule space.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "net/timer_service.hpp"
#include "util/stats.hpp"

namespace samoa::chaos {

class ChaosEngine {
 public:
  /// Where arm() schedules the plan's actions.
  enum class Route { kTimers, kNetwork };

  /// `timers` must outlive the engine and drive the same clock as `net`.
  ChaosEngine(net::SimNetwork& net, net::TimerService& timers, Route route = Route::kTimers);

  /// Schedule every action of the plan (relative to now). Can be called
  /// several times to layer plans.
  void arm(const FaultPlan& plan);

  struct Stats {
    Counter crashes;
    Counter recoveries;
    Counter partitions;
    Counter heals;
    Counter loss_bursts;
    Counter calls;
  };
  const Stats& stats() const { return stats_; }

  /// Human-readable record of the applied actions, in firing order.
  std::vector<std::string> log() const;

 private:
  void apply(const FaultAction& action);
  void note(const std::string& line);

  net::SimNetwork& net_;
  net::TimerService& timers_;
  Route route_;
  Stats stats_;
  bool burst_active_ = false;        // guarded by mu_
  net::LinkOptions saved_defaults_;  // defaults to restore after a burst
  mutable std::mutex mu_;
  std::vector<std::string> log_;
};

}  // namespace samoa::chaos
